//! Hash-consed symbol, monomial, and polynomial tables behind the optimized
//! [`crate::Poly`].
//!
//! Every distinct monomial is interned exactly once and identified by a
//! [`MonoId`]; id equality is structural equality, so polynomial arithmetic
//! reduces to merging sorted `u32` runs instead of cloning and re-comparing
//! `Vec<(Symbol, i32)>` factor lists. A second table does the same for whole
//! canonical polynomials: a [`PolyId`] names one id-sorted term vector, so
//! the algebra memos (`pow`, `subst`, products, summations) key on packed
//! integer ids instead of hashing and cloning entire `Poly` values. The
//! tables are append-only:
//!
//! - A process-wide table (`OnceLock<RwLock<Global>>`) assigns ids. It is
//!   touched only the first time any thread encounters a symbol, monomial,
//!   or polynomial; batch-prediction workers therefore share one arena and
//!   hit each other's warm entries.
//! - Each thread keeps a mirror of the global table plus its own memo
//!   caches (monomial products, `split_symbol` results) and a scratch-buffer
//!   pool for merge-based polynomial ops. Ids are never invalidated, so
//!   mirrors only ever grow a missing tail; steady-state operation is
//!   entirely lock-free.
//!
//! Factor lists with at most two variables — the overwhelmingly common case
//! in loop-nest cost expressions — are stored inline in the table entry;
//! larger ones spill to a leaked slice. Entries also leak their canonical
//! [`Monomial`] so `Poly::terms()` can keep handing out `&Monomial` without
//! ownership gymnastics; the leak is bounded by the number of distinct
//! monomials ever created, which is tiny for this workload. Polynomial
//! entries leak their canonical term slice the same way, bounded by
//! [`POLY_ARENA_CAP`]: past the cap, [`intern_poly`] reports
//! [`POLY_UNINTERNED`] and callers fall back to direct (unmemoized)
//! computation instead of growing the arena.

use crate::monomial::Monomial;
use crate::symbol::Symbol;
use crate::Rational;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// Interned symbol id: index into the symbol table.
pub(crate) type SymId = u32;
/// Interned monomial id: index into the monomial table.
pub(crate) type MonoId = u32;

/// Interned polynomial id: index into the polynomial table.
pub(crate) type PolyId = u32;

/// The constant monomial `1` is always entry 0, so a polynomial's constant
/// term (if present) is always the first element of its id-sorted term list.
pub(crate) const MONO_ONE: MonoId = 0;

/// Sentinel returned by [`intern_poly`] once the arena is full: the
/// polynomial is *not* interned and the caller must compute unmemoized.
/// Never a valid table index.
pub(crate) const POLY_UNINTERNED: PolyId = u32::MAX;

/// Hard cap on distinct interned polynomials. Entries leak (by design —
/// ids must stay valid forever), so a pathological workload producing
/// unboundedly many distinct polynomials must not grow the arena without
/// limit; past the cap the algebra simply stops memoizing new shapes.
pub(crate) const POLY_ARENA_CAP: usize = 1 << 20;

/// Memo caches are cleared (not evicted) past this size; the workloads here
/// never approach it, it only guards against pathological inputs.
const CACHE_CAP: usize = 1 << 14;

/// Packed factor list: `(SymId, exponent)` pairs sorted by `SymId`, with
/// inline storage for the ≤2-variable case.
#[derive(Clone, Copy)]
pub(crate) enum Factors {
    /// Up to two factors stored in the entry itself.
    Inline { len: u8, fac: [(SymId, i32); 2] },
    /// Larger factor lists, interned once and leaked.
    Spill(&'static [(SymId, i32)]),
}

impl Factors {
    pub(crate) fn as_slice(&self) -> &[(SymId, i32)] {
        match self {
            Factors::Inline { len, fac } => &fac[..*len as usize],
            Factors::Spill(s) => s,
        }
    }

    fn from_slice(fs: &[(SymId, i32)]) -> Factors {
        if fs.len() <= 2 {
            let mut fac = [(0, 0); 2];
            fac[..fs.len()].copy_from_slice(fs);
            Factors::Inline {
                len: fs.len() as u8,
                fac,
            }
        } else {
            Factors::Spill(Box::leak(fs.to_vec().into_boxed_slice()))
        }
    }
}

/// One monomial-table entry. `Copy` so thread mirrors share the leaked data.
#[derive(Clone, Copy)]
pub(crate) struct MonoEntry {
    /// The canonical (name-sorted) monomial, leaked for `&'static` access.
    pub(crate) mono: &'static Monomial,
    /// Id-sorted factor list used by the arithmetic fast paths.
    pub(crate) factors: Factors,
    /// Laurent total degree (sum of exponents).
    pub(crate) degree: i32,
    /// Whether any exponent is negative.
    pub(crate) has_neg: bool,
}

/// One polynomial-table entry: the canonical id-sorted term slice, leaked
/// so every thread mirror shares the same storage.
type PolyTerms = &'static [(MonoId, Rational)];

struct Global {
    syms: Vec<Symbol>,
    sym_ids: HashMap<Symbol, SymId>,
    monos: Vec<MonoEntry>,
    mono_ids: HashMap<Box<[(SymId, i32)]>, MonoId>,
    polys: Vec<PolyTerms>,
    poly_ids: HashMap<Box<[(MonoId, Rational)]>, PolyId>,
}

impl Global {
    fn new() -> Global {
        let one: &'static Monomial = Box::leak(Box::new(Monomial::one()));
        let entry = MonoEntry {
            mono: one,
            factors: Factors::from_slice(&[]),
            degree: 0,
            has_neg: false,
        };
        Global {
            syms: Vec::new(),
            sym_ids: HashMap::new(),
            monos: vec![entry],
            mono_ids: HashMap::from([(Vec::new().into_boxed_slice(), MONO_ONE)]),
            polys: Vec::new(),
            poly_ids: HashMap::new(),
        }
    }
}

static GLOBAL: OnceLock<RwLock<Global>> = OnceLock::new();

fn global() -> &'static RwLock<Global> {
    GLOBAL.get_or_init(|| RwLock::new(Global::new()))
}

#[derive(Default)]
struct Local {
    syms: Vec<Symbol>,
    sym_ids: HashMap<Symbol, SymId>,
    monos: Vec<MonoEntry>,
    mono_ids: HashMap<Box<[(SymId, i32)]>, MonoId>,
    polys: Vec<PolyTerms>,
    poly_ids: HashMap<Box<[(MonoId, Rational)]>, PolyId>,
    mul_cache: HashMap<(MonoId, MonoId), MonoId>,
    split_cache: HashMap<(MonoId, SymId), (i32, MonoId)>,
    scratch: Vec<Vec<(MonoId, Rational)>>,
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::default());
}

/// Copies the global tail this mirror is missing. Ids are append-only, so
/// existing local entries are never touched.
fn sync(l: &mut Local, g: &Global) {
    for i in l.syms.len()..g.syms.len() {
        let s = g.syms[i].clone();
        l.sym_ids.insert(s.clone(), i as SymId);
        l.syms.push(s);
    }
    for i in l.monos.len()..g.monos.len() {
        let e = g.monos[i];
        l.mono_ids.insert(
            e.factors.as_slice().to_vec().into_boxed_slice(),
            i as MonoId,
        );
        l.monos.push(e);
    }
    for i in l.polys.len()..g.polys.len() {
        let terms = g.polys[i];
        l.poly_ids
            .insert(terms.to_vec().into_boxed_slice(), i as PolyId);
        l.polys.push(terms);
    }
}

/// Makes sure ids up to and including `id` are present in the mirror
/// (a `Poly` built on another thread can carry ids this thread has not seen).
fn ensure_mono(l: &mut Local, id: MonoId) {
    if (id as usize) >= l.monos.len() {
        let g = global().read().unwrap_or_else(|e| e.into_inner());
        sync(l, &g);
    }
}

fn sym_id_in(l: &mut Local, sym: &Symbol) -> SymId {
    if let Some(&id) = l.sym_ids.get(sym) {
        return id;
    }
    {
        let g = global().read().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = g.sym_ids.get(sym) {
            sync(l, &g);
            return id;
        }
    }
    let mut g = global().write().unwrap_or_else(|e| e.into_inner());
    if let Some(&id) = g.sym_ids.get(sym) {
        sync(l, &g);
        return id;
    }
    let id = g.syms.len() as SymId;
    g.syms.push(sym.clone());
    g.sym_ids.insert(sym.clone(), id);
    sync(l, &g);
    id
}

/// Interns an id-sorted, zero-free factor list.
fn intern_factors_in(l: &mut Local, fs: &[(SymId, i32)]) -> MonoId {
    if fs.is_empty() {
        return MONO_ONE;
    }
    if let Some(&id) = l.mono_ids.get(fs) {
        return id;
    }
    {
        let g = global().read().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = g.mono_ids.get(fs) {
            sync(l, &g);
            return id;
        }
    }
    let mut g = global().write().unwrap_or_else(|e| e.into_inner());
    if let Some(&id) = g.mono_ids.get(fs) {
        sync(l, &g);
        return id;
    }
    let pairs: Vec<(Symbol, i32)> = fs
        .iter()
        .map(|&(sid, exp)| (g.syms[sid as usize].clone(), exp))
        .collect();
    let mono: &'static Monomial = Box::leak(Box::new(Monomial::from_pairs(pairs)));
    let entry = MonoEntry {
        mono,
        factors: Factors::from_slice(fs),
        degree: fs.iter().map(|&(_, e)| e).sum(),
        has_neg: fs.iter().any(|&(_, e)| e < 0),
    };
    let id = g.monos.len() as MonoId;
    g.monos.push(entry);
    g.mono_ids.insert(fs.to_vec().into_boxed_slice(), id);
    sync(l, &g);
    id
}

fn mono_mul_in(l: &mut Local, a: MonoId, b: MonoId) -> MonoId {
    if a == MONO_ONE {
        return b;
    }
    if b == MONO_ONE {
        return a;
    }
    if let Some(&id) = l.mul_cache.get(&(a, b)) {
        return id;
    }
    ensure_mono(l, a.max(b));
    let fa = l.monos[a as usize].factors;
    let fb = l.monos[b as usize].factors;
    let (sa, sb) = (fa.as_slice(), fb.as_slice());
    let mut out: Vec<(SymId, i32)> = Vec::with_capacity(sa.len() + sb.len());
    let (mut i, mut j) = (0, 0);
    while i < sa.len() && j < sb.len() {
        match sa[i].0.cmp(&sb[j].0) {
            std::cmp::Ordering::Less => {
                out.push(sa[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(sb[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let e = sa[i].1 + sb[j].1;
                if e != 0 {
                    out.push((sa[i].0, e));
                }
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&sa[i..]);
    out.extend_from_slice(&sb[j..]);
    let id = intern_factors_in(l, &out);
    if l.mul_cache.len() >= CACHE_CAP {
        l.mul_cache.clear();
    }
    l.mul_cache.insert((a, b), id);
    id
}

fn mono_split_in(l: &mut Local, id: MonoId, sid: SymId) -> (i32, MonoId) {
    if id == MONO_ONE {
        return (0, MONO_ONE);
    }
    if let Some(&r) = l.split_cache.get(&(id, sid)) {
        return r;
    }
    ensure_mono(l, id);
    let factors = l.monos[id as usize].factors;
    let fs = factors.as_slice();
    let r = match fs.iter().position(|&(s, _)| s == sid) {
        None => (0, id),
        Some(pos) => {
            let exp = fs[pos].1;
            let mut rest: Vec<(SymId, i32)> = Vec::with_capacity(fs.len() - 1);
            rest.extend_from_slice(&fs[..pos]);
            rest.extend_from_slice(&fs[pos + 1..]);
            (exp, intern_factors_in(l, &rest))
        }
    };
    if l.split_cache.len() >= CACHE_CAP {
        l.split_cache.clear();
    }
    l.split_cache.insert((id, sid), r);
    r
}

/// Interns a canonical (id-sorted, zero-free) polynomial term slice.
/// Returns [`POLY_UNINTERNED`] once the arena holds [`POLY_ARENA_CAP`]
/// distinct polynomials; callers must then skip memoization.
fn intern_poly_in(l: &mut Local, terms: &[(MonoId, Rational)]) -> PolyId {
    if let Some(&id) = l.poly_ids.get(terms) {
        return id;
    }
    {
        let g = global().read().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = g.poly_ids.get(terms) {
            sync(l, &g);
            return id;
        }
        if g.polys.len() >= POLY_ARENA_CAP {
            return POLY_UNINTERNED;
        }
    }
    let mut g = global().write().unwrap_or_else(|e| e.into_inner());
    if let Some(&id) = g.poly_ids.get(terms) {
        sync(l, &g);
        return id;
    }
    if g.polys.len() >= POLY_ARENA_CAP {
        return POLY_UNINTERNED;
    }
    let leaked: PolyTerms = Box::leak(terms.to_vec().into_boxed_slice());
    let id = g.polys.len() as PolyId;
    g.polys.push(leaked);
    g.poly_ids.insert(terms.to_vec().into_boxed_slice(), id);
    sync(l, &g);
    id
}

/// Makes sure poly ids up to and including `id` are present in the mirror.
fn ensure_poly(l: &mut Local, id: PolyId) {
    if (id as usize) >= l.polys.len() {
        let g = global().read().unwrap_or_else(|e| e.into_inner());
        sync(l, &g);
    }
}

// ---- public (crate) surface -------------------------------------------------

/// Interns a canonical polynomial term slice; see [`intern_poly_in`].
pub(crate) fn intern_poly(terms: &[(MonoId, Rational)]) -> PolyId {
    LOCAL.with(|l| intern_poly_in(&mut l.borrow_mut(), terms))
}

/// The canonical term slice for an interned polynomial id.
pub(crate) fn poly_terms(id: PolyId) -> PolyTerms {
    LOCAL.with(|l| {
        let l = &mut *l.borrow_mut();
        ensure_poly(l, id);
        l.polys[id as usize]
    })
}

pub(crate) fn sym_id(sym: &Symbol) -> SymId {
    LOCAL.with(|l| sym_id_in(&mut l.borrow_mut(), sym))
}

/// The canonical shared [`Symbol`] for `name`, interning it on first use —
/// the allocation-free path behind [`Symbol::interned`].
pub(crate) fn symbol_named(name: &str) -> Symbol {
    LOCAL.with(|l| {
        let l = &mut *l.borrow_mut();
        if let Some((sym, _)) = l.sym_ids.get_key_value(name) {
            return sym.clone();
        }
        let sym = Symbol::new(name);
        sym_id_in(l, &sym);
        sym
    })
}

/// The canonical interned monomial for `id`.
pub(crate) fn mono(id: MonoId) -> &'static Monomial {
    LOCAL.with(|l| {
        let l = &mut *l.borrow_mut();
        ensure_mono(l, id);
        l.monos[id as usize].mono
    })
}

/// A copy of the full table entry (factors, degree, negativity flag).
pub(crate) fn mono_entry(id: MonoId) -> MonoEntry {
    LOCAL.with(|l| {
        let l = &mut *l.borrow_mut();
        ensure_mono(l, id);
        l.monos[id as usize]
    })
}

/// Interns an API-level monomial (name-sorted factors → id-sorted key).
pub(crate) fn intern_mono(m: &Monomial) -> MonoId {
    LOCAL.with(|l| {
        let l = &mut *l.borrow_mut();
        let mut fs: Vec<(SymId, i32)> = m.factors().map(|(s, e)| (sym_id_in(l, s), e)).collect();
        fs.sort_unstable_by_key(|&(s, _)| s);
        intern_factors_in(l, &fs)
    })
}

/// `sym^exp` as an interned id (`MONO_ONE` when `exp == 0`).
pub(crate) fn mono_power(sym: &Symbol, exp: i32) -> MonoId {
    if exp == 0 {
        return MONO_ONE;
    }
    LOCAL.with(|l| {
        let l = &mut *l.borrow_mut();
        let sid = sym_id_in(l, sym);
        intern_factors_in(l, &[(sid, exp)])
    })
}

/// Product of two interned monomials (memoized per thread).
pub(crate) fn mono_mul(a: MonoId, b: MonoId) -> MonoId {
    LOCAL.with(|l| mono_mul_in(&mut l.borrow_mut(), a, b))
}

/// Raises every exponent by `exp` (id order is preserved, so no re-sort).
pub(crate) fn mono_pow(id: MonoId, exp: i32) -> MonoId {
    if exp == 0 || id == MONO_ONE {
        return if exp == 0 { MONO_ONE } else { id };
    }
    if exp == 1 {
        return id;
    }
    LOCAL.with(|l| {
        let l = &mut *l.borrow_mut();
        ensure_mono(l, id);
        let factors = l.monos[id as usize].factors;
        let fs: Vec<(SymId, i32)> = factors
            .as_slice()
            .iter()
            .map(|&(s, e)| (s, e * exp))
            .collect();
        intern_factors_in(l, &fs)
    })
}

/// Removes `sym` from the monomial: `(removed exponent, remaining id)`,
/// memoized per thread — the backbone of `subst`/`derivative`/`as_univariate`.
pub(crate) fn mono_split(id: MonoId, sid: SymId) -> (i32, MonoId) {
    LOCAL.with(|l| mono_split_in(&mut l.borrow_mut(), id, sid))
}

/// Grabs a reusable term buffer from the thread-local pool.
pub(crate) fn take_scratch() -> Vec<(MonoId, Rational)> {
    LOCAL
        .with(|l| l.borrow_mut().scratch.pop())
        .map(|mut v| {
            v.clear();
            v
        })
        .unwrap_or_default()
}

/// Returns a term buffer to the pool for reuse.
pub(crate) fn put_scratch(v: Vec<(MonoId, Rational)>) {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if l.scratch.len() < 8 {
            l.scratch.push(v);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: &str) -> Symbol {
        Symbol::new(n)
    }

    #[test]
    fn ids_are_structural_identity() {
        let a = intern_mono(&Monomial::from_pairs([(s("x"), 2), (s("y"), 1)]));
        let b = intern_mono(&Monomial::from_pairs([(s("y"), 1), (s("x"), 2)]));
        assert_eq!(a, b);
        assert_ne!(a, intern_mono(&Monomial::var(s("x"))));
        assert_eq!(intern_mono(&Monomial::one()), MONO_ONE);
    }

    #[test]
    fn mul_merges_and_cancels() {
        let x2 = mono_power(&s("x"), 2);
        let xinv2 = mono_power(&s("x"), -2);
        assert_eq!(mono_mul(x2, xinv2), MONO_ONE);
        let y = mono_power(&s("y"), 1);
        let xy = mono_mul(mono_power(&s("x"), 1), y);
        assert_eq!(mono(xy).to_string(), "x*y");
        assert_eq!(mono_entry(xy).degree, 2);
    }

    #[test]
    fn split_round_trips() {
        let m = intern_mono(&Monomial::from_pairs([(s("x"), 3), (s("y"), -1)]));
        let sid = sym_id(&s("x"));
        let (e, rest) = mono_split(m, sid);
        assert_eq!(e, 3);
        assert_eq!(mono(rest).to_string(), "y^-1");
        assert_eq!(mono_mul(rest, mono_power(&s("x"), 3)), m);
    }

    #[test]
    fn cross_thread_ids_resolve() {
        let id = std::thread::spawn(|| intern_mono(&Monomial::from_pairs([(s("tq"), 5)])))
            .join()
            .unwrap();
        assert_eq!(mono(id).to_string(), "tq^5");
    }

    #[test]
    fn poly_ids_are_structural_identity() {
        let x = mono_power(&s("px"), 1);
        let terms = [
            (MONO_ONE, Rational::from_int(3)),
            (x, Rational::from_int(2)),
        ];
        let a = intern_poly(&terms);
        let b = intern_poly(&terms);
        assert_eq!(a, b);
        assert_ne!(a, POLY_UNINTERNED);
        assert_eq!(poly_terms(a), &terms[..]);
        let other = intern_poly(&[(x, Rational::from_int(7))]);
        assert_ne!(a, other);
    }

    #[test]
    fn cross_thread_poly_ids_resolve() {
        let id = std::thread::spawn(|| {
            let y = mono_power(&s("py"), 2);
            intern_poly(&[(y, Rational::from_int(5))])
        })
        .join()
        .unwrap();
        let terms = poly_terms(id);
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].1, Rational::from_int(5));
    }

    #[test]
    fn pow_scales_exponents() {
        let m = intern_mono(&Monomial::from_pairs([(s("a"), 1), (s("b"), 2)]));
        let m2 = mono_pow(m, 2);
        assert_eq!(mono(m2).to_string(), "a^2*b^4");
        assert_eq!(mono_pow(m, 0), MONO_ONE);
    }
}
