//! Sharded second-level memo tables and per-thread hit telemetry.
//!
//! The algebra memos (`pow`, `subst`, products, summations, and the
//! scheduling memos layered on top in `presage-core`) are two-level:
//!
//! - **L1** is a plain thread-local `HashMap` — a hit costs no atomic
//!   operation at all, which is what keeps the sequential hot path as
//!   fast as the single-threaded engine.
//! - **L2** is a [`ShardedMemo`]: one short-critical-section mutex per
//!   shard, selected by key hash. A thread that has never seen a shape
//!   (a freshly spawned batch worker, a cold thread pool slot) probes L2
//!   before computing, so warm results survive thread churn instead of
//!   being recomputed once per worker per round.
//!
//! Each L2 shard enforces its capacity independently: a hot shard that
//! fills up clears *only itself*, so an eviction storm on one shard never
//! stalls or empties the others (the single-global-clear behaviour this
//! replaces wiped every memo under one write lock mid-flight).
//!
//! The thread-local counters ([`thread_stats`] / [`take_thread_stats`])
//! classify every memoized lookup as an L1 hit, an L2 hit, or a miss.
//! `Predictor::predict_batch` drains them per worker and threads them
//! into its report for `perfsuite` telemetry.

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::Mutex;

/// A fixed-shard, mutex-per-shard memo table.
///
/// Keys hash to a shard; each shard is an independently locked
/// `HashMap` with an independently enforced capacity (clear-on-cap, the
/// same eviction discipline as the thread-local L1 memos). Lookups and
/// inserts hold exactly one shard lock for one hash-map operation.
#[derive(Debug)]
pub struct ShardedMemo<K, V> {
    shards: Box<[Mutex<HashMap<K, V>>]>,
    hasher: RandomState,
    cap_per_shard: usize,
}

impl<K: Hash + Eq, V: Clone> ShardedMemo<K, V> {
    /// A memo with `shards` independent locks, each holding at most
    /// `cap_per_shard` entries before clearing itself.
    ///
    /// `shards` must be a power of two (the shard index is a hash mask).
    pub fn new(shards: usize, cap_per_shard: usize) -> ShardedMemo<K, V> {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        ShardedMemo {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            cap_per_shard,
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & (self.shards.len() - 1)]
    }

    /// Clones the memoized value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    /// Memoizes `key → value`. If the owning shard is at capacity it is
    /// cleared first — *only* that shard; sibling shards keep their
    /// entries.
    pub fn insert(&self, key: K, value: V) {
        let mut shard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
        if shard.len() >= self.cap_per_shard {
            shard.clear();
        }
        shard.insert(key, value);
    }

    /// Total entries across all shards (diagnostic; takes every lock).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Returns `true` when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry in every shard.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

/// Per-thread memoization counters for one stretch of work.
///
/// Returned by [`thread_stats`] and [`take_thread_stats`]; the three
/// fields partition every counted lookup.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups served from a thread-local L1 memo (no atomics touched).
    pub l1_hits: u64,
    /// L1 misses served from a sharded L2 memo (one shard lock).
    pub l2_hits: u64,
    /// Lookups that missed both levels and computed from scratch.
    pub misses: u64,
}

impl MemoStats {
    /// Total counted lookups.
    pub fn lookups(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.misses
    }

    /// Component-wise sum — aggregates per-worker stats into a batch total.
    pub fn merged(&self, other: &MemoStats) -> MemoStats {
        MemoStats {
            l1_hits: self.l1_hits + other.l1_hits,
            l2_hits: self.l2_hits + other.l2_hits,
            misses: self.misses + other.misses,
        }
    }
}

thread_local! {
    static L1_HITS: Cell<u64> = const { Cell::new(0) };
    static L2_HITS: Cell<u64> = const { Cell::new(0) };
    static MISSES: Cell<u64> = const { Cell::new(0) };
}

/// Counts one thread-local (L1) memo hit toward [`thread_stats`].
#[inline]
pub fn record_l1_hit() {
    L1_HITS.with(|c| c.set(c.get() + 1));
}

/// Counts one sharded (L2) memo hit toward [`thread_stats`].
#[inline]
pub fn record_l2_hit() {
    L2_HITS.with(|c| c.set(c.get() + 1));
}

/// Counts one two-level memo miss toward [`thread_stats`].
#[inline]
pub fn record_miss() {
    MISSES.with(|c| c.set(c.get() + 1));
}

/// The calling thread's memo counters since the last [`take_thread_stats`].
pub fn thread_stats() -> MemoStats {
    MemoStats {
        l1_hits: L1_HITS.with(|c| c.get()),
        l2_hits: L2_HITS.with(|c| c.get()),
        misses: MISSES.with(|c| c.get()),
    }
}

/// Reads and resets the calling thread's memo counters — one worker's
/// share of a batch.
pub fn take_thread_stats() -> MemoStats {
    MemoStats {
        l1_hits: L1_HITS.with(|c| c.replace(0)),
        l2_hits: L2_HITS.with(|c| c.replace(0)),
        misses: MISSES.with(|c| c.replace(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_round_trip() {
        let memo: ShardedMemo<u64, u64> = ShardedMemo::new(4, 8);
        assert_eq!(memo.get(&1), None);
        memo.insert(1, 100);
        memo.insert(2, 200);
        assert_eq!(memo.get(&1), Some(100));
        assert_eq!(memo.get(&2), Some(200));
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn cap_clears_only_the_hot_shard() {
        // One shard: every key lands in it, so filling past cap clears it.
        let memo: ShardedMemo<u64, u64> = ShardedMemo::new(1, 4);
        for k in 0..4 {
            memo.insert(k, k);
        }
        assert_eq!(memo.len(), 4);
        memo.insert(99, 99);
        assert_eq!(memo.len(), 1, "at-cap shard clears before inserting");
        assert_eq!(memo.get(&99), Some(99));

        // Many shards: drive one key's shard past cap repeatedly and
        // check entries in *other* shards survive every clear.
        let memo: ShardedMemo<u64, u64> = ShardedMemo::new(8, 2);
        for k in 0..256 {
            memo.insert(k, k);
        }
        // Each of the 8 shards holds at most 2 entries; at least one
        // survivor per shard means clears stayed independent.
        assert!(
            memo.len() >= 8,
            "sibling shards kept entries: {}",
            memo.len()
        );
        assert!(memo.len() <= 16);
    }

    #[test]
    fn concurrent_inserts_and_gets() {
        let memo: ShardedMemo<u64, u64> = ShardedMemo::new(16, 1 << 12);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let memo = &memo;
                scope.spawn(move || {
                    for k in 0..500u64 {
                        memo.insert(k * 4 + t, k);
                        assert_eq!(memo.get(&(k * 4 + t)), Some(k));
                    }
                });
            }
        });
        assert_eq!(memo.len(), 2000);
    }

    #[test]
    fn thread_stats_drain_per_thread() {
        let before = take_thread_stats();
        record_l1_hit();
        record_l1_hit();
        record_l2_hit();
        record_miss();
        let got = take_thread_stats();
        assert_eq!(
            got,
            MemoStats {
                l1_hits: 2,
                l2_hits: 1,
                misses: 1
            }
        );
        assert_eq!(got.lookups(), 4);
        assert_eq!(take_thread_stats(), MemoStats::default(), "drained");
        // Another thread's counters are independent.
        std::thread::spawn(|| {
            record_miss();
            assert_eq!(take_thread_stats().misses, 1);
        })
        .join()
        .unwrap();
        assert_eq!(thread_stats(), MemoStats::default());
        // Restore whatever the harness had accumulated (tests share threads).
        for _ in 0..before.l1_hits {
            record_l1_hit();
        }
        for _ in 0..before.l2_hits {
            record_l2_hit();
        }
        for _ in 0..before.misses {
            record_miss();
        }
    }
}
