//! The seed symbolic engine, preserved verbatim as a reference oracle.
//!
//! This module is the pre-interning implementation of the symbolic layer:
//! [`Poly`] stores its terms in a `BTreeMap<Monomial, Rational>` and every
//! operation allocates fresh monomials, exactly as the seed did. It exists
//! for the same reason `presage_core::reference::NaivePlacer` does — the
//! optimized engine in [`crate::Poly`] must be provably a pure
//! representation change, so the differential suite
//! (`tests/symbolic_differential.rs`) drives identical workloads through
//! both engines and asserts canonical equality, and `perfsuite` measures
//! end-to-end prediction throughput against a reference-backed aggregation
//! path built on these types.
//!
//! Do not "improve" this module: its value is fidelity to the seed, not
//! speed. Only the decision procedures (`compare`, sign analysis) are
//! omitted — they consume canonical polynomials and are shared by both
//! engines unchanged.

use crate::monomial::Monomial;
use crate::poly::SubstError;
use crate::symbol::Symbol;
use crate::{Interval, Rational, VarInfo};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The seed multivariate Laurent polynomial: `BTreeMap<Monomial, Rational>`.
///
/// # Examples
///
/// ```
/// use presage_symbolic::reference::Poly;
/// use presage_symbolic::Symbol;
///
/// let n = Poly::var(Symbol::new("n"));
/// let cost = &(&n * &n) * &Poly::from(3) + &n * &Poly::from(2) + Poly::from(7);
/// assert_eq!(cost.to_string(), "3*n^2 + 2*n + 7");
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Poly {
    /// Canonical form: monomial -> nonzero coefficient.
    terms: BTreeMap<Monomial, Rational>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly {
            terms: BTreeMap::new(),
        }
    }

    /// The constant polynomial 1.
    pub fn one() -> Poly {
        Poly::constant(Rational::ONE)
    }

    /// A constant polynomial.
    pub fn constant(c: impl Into<Rational>) -> Poly {
        let c = c.into();
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(Monomial::one(), c);
        }
        Poly { terms }
    }

    /// The polynomial consisting of a single variable.
    pub fn var(sym: Symbol) -> Poly {
        Poly::term(Rational::ONE, Monomial::var(sym))
    }

    /// A single-term polynomial `coeff * mono`.
    pub fn term(coeff: impl Into<Rational>, mono: Monomial) -> Poly {
        let coeff = coeff.into();
        let mut terms = BTreeMap::new();
        if !coeff.is_zero() {
            terms.insert(mono, coeff);
        }
        Poly { terms }
    }

    /// Builds a univariate polynomial from coefficients `c0 + c1*x + c2*x^2 + ...`.
    pub fn from_coeffs(sym: &Symbol, coeffs: &[Rational]) -> Poly {
        let mut p = Poly::zero();
        for (i, c) in coeffs.iter().enumerate() {
            p += Poly::term(*c, Monomial::power(sym.clone(), i as i32));
        }
        p
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `true` if the polynomial has no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.keys().all(|m| m.is_one())
    }

    /// The constant value, if [`Poly::is_constant`].
    pub fn constant_value(&self) -> Option<Rational> {
        if self.is_zero() {
            Some(Rational::ZERO)
        } else if self.is_constant() {
            self.terms.get(&Monomial::one()).copied()
        } else {
            None
        }
    }

    /// The coefficient of the constant (degree-0) term.
    pub fn constant_term(&self) -> Rational {
        self.terms
            .get(&Monomial::one())
            .copied()
            .unwrap_or(Rational::ZERO)
    }

    /// Number of (nonzero) terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over `(monomial, coefficient)` pairs in ascending grlex order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, Rational)> {
        self.terms.iter().map(|(m, c)| (m, *c))
    }

    /// The coefficient attached to `mono` (zero if absent).
    pub fn coeff(&self, mono: &Monomial) -> Rational {
        self.terms.get(mono).copied().unwrap_or(Rational::ZERO)
    }

    /// All symbols appearing in the polynomial.
    pub fn symbols(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        for m in self.terms.keys() {
            out.extend(m.symbols().cloned());
        }
        out
    }

    /// Returns `true` if `sym` occurs in the polynomial.
    pub fn contains_symbol(&self, sym: &Symbol) -> bool {
        self.terms.keys().any(|m| m.exponent_of(sym) != 0)
    }

    /// Returns `true` if any term has a negative exponent (a `1/x^k` term).
    pub fn has_negative_exponents(&self) -> bool {
        self.terms.keys().any(|m| m.has_negative_exponent())
    }

    /// Highest exponent of `sym` across terms (0 for absent symbols; may be
    /// negative if `sym` appears only in denominators).
    pub fn degree_in(&self, sym: &Symbol) -> i32 {
        self.terms
            .keys()
            .map(|m| m.exponent_of(sym))
            .max()
            .unwrap_or(0)
    }

    /// Maximum total degree across terms (0 for the zero polynomial).
    pub fn total_degree(&self) -> i32 {
        self.terms
            .keys()
            .map(|m| m.total_degree())
            .max()
            .unwrap_or(0)
    }

    fn insert_term(&mut self, mono: Monomial, coeff: Rational) {
        if coeff.is_zero() {
            return;
        }
        match self.terms.entry(mono) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(coeff);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let sum = *e.get() + coeff;
                if sum.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = sum;
                }
            }
        }
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, c: impl Into<Rational>) -> Poly {
        let c = c.into();
        if c.is_zero() {
            return Poly::zero();
        }
        Poly {
            terms: self
                .terms
                .iter()
                .map(|(m, v)| (m.clone(), *v * c))
                .collect(),
        }
    }

    /// Raises the polynomial to a non-negative power.
    pub fn pow(&self, exp: u32) -> Poly {
        let mut acc = Poly::one();
        for _ in 0..exp {
            acc = &acc * self;
        }
        acc
    }

    /// Substitutes `sym := replacement` throughout the polynomial.
    ///
    /// Negative powers of `sym` are supported when `replacement` is a single
    /// nonzero term (a scaled monomial); otherwise such terms are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`SubstError`] when a negative power of `sym` meets a
    /// replacement that is zero or not a single term.
    pub fn subst(&self, sym: &Symbol, replacement: &Poly) -> Result<Poly, SubstError> {
        let mut out = Poly::zero();
        for (mono, coeff) in &self.terms {
            let (exp, rest) = mono.split_symbol(sym);
            if exp == 0 {
                out.insert_term(rest, *coeff);
            } else if exp > 0 {
                let powed = replacement.pow(exp as u32);
                let scaled = powed.scale(*coeff);
                let shifted = &scaled * &Poly::term(Rational::ONE, rest);
                out += shifted;
            } else {
                // Negative power: replacement must be invertible as a monomial.
                let (rc, rm) = replacement.single_term().ok_or_else(|| {
                    SubstError::new(
                        sym,
                        "replacement for a negative power must be a single nonzero term",
                    )
                })?;
                if rc.is_zero() {
                    return Err(SubstError::new(
                        sym,
                        "cannot substitute zero into a negative power",
                    ));
                }
                let inv = Poly::term(rc.pow(exp), rm.pow(exp));
                let shifted = &inv.scale(*coeff) * &Poly::term(Rational::ONE, rest);
                out += shifted;
            }
        }
        Ok(out)
    }

    /// Substitutes many symbols at once (applied left to right).
    ///
    /// # Errors
    ///
    /// Propagates [`SubstError`] from [`Poly::subst`].
    pub fn subst_all(&self, bindings: &[(Symbol, Poly)]) -> Result<Poly, SubstError> {
        let mut p = self.clone();
        for (sym, rep) in bindings {
            p = p.subst(sym, rep)?;
        }
        Ok(p)
    }

    /// If the polynomial is a single term, returns its coefficient and monomial.
    pub fn single_term(&self) -> Option<(Rational, Monomial)> {
        if self.terms.len() == 1 {
            let (m, c) = self.terms.iter().next().unwrap();
            Some((*c, m.clone()))
        } else {
            None
        }
    }

    /// Evaluates with exact rational bindings; `None` when a symbol is
    /// unbound or a zero value meets a negative exponent.
    pub fn eval(&self, bindings: &HashMap<Symbol, Rational>) -> Option<Rational> {
        let mut acc = Rational::ZERO;
        for (mono, coeff) in &self.terms {
            acc += *coeff * mono.eval(bindings)?;
        }
        Some(acc)
    }

    /// Evaluates with floating-point bindings; `None` when a symbol is unbound.
    pub fn eval_f64(&self, bindings: &HashMap<Symbol, f64>) -> Option<f64> {
        let mut acc = 0.0;
        for (mono, coeff) in &self.terms {
            acc += coeff.to_f64() * mono.eval_f64(bindings)?;
        }
        Some(acc)
    }

    /// Evaluates a univariate polynomial at `x`.
    pub fn eval_univariate(&self, sym: &Symbol, x: f64) -> Option<f64> {
        let mut b = HashMap::new();
        b.insert(sym.clone(), x);
        self.eval_f64(&b)
    }

    /// Partial derivative with respect to `sym`.
    pub fn derivative(&self, sym: &Symbol) -> Poly {
        let mut out = Poly::zero();
        for (mono, coeff) in &self.terms {
            let (exp, rest) = mono.split_symbol(sym);
            if exp == 0 {
                continue;
            }
            let new_mono = rest.mul(&Monomial::power(sym.clone(), exp - 1));
            out.insert_term(new_mono, *coeff * Rational::from_int(exp as i64));
        }
        out
    }

    /// Antiderivative with respect to `sym` (constant of integration zero).
    ///
    /// # Errors
    ///
    /// Returns [`SubstError`] if any term has `sym^-1`.
    pub fn antiderivative(&self, sym: &Symbol) -> Result<Poly, SubstError> {
        let mut out = Poly::zero();
        for (mono, coeff) in &self.terms {
            let (exp, rest) = mono.split_symbol(sym);
            if exp == -1 {
                return Err(SubstError::new(
                    sym,
                    "x^-1 integrates to a logarithm; drop the term first",
                ));
            }
            let new_mono = rest.mul(&Monomial::power(sym.clone(), exp + 1));
            out.insert_term(new_mono, *coeff / Rational::from_int((exp + 1) as i64));
        }
        Ok(out)
    }

    /// Views the polynomial as univariate in `sym`: returns
    /// `(exponent, coefficient-polynomial)` pairs sorted by ascending exponent.
    pub fn as_univariate(&self, sym: &Symbol) -> Vec<(i32, Poly)> {
        let mut by_exp: BTreeMap<i32, Poly> = BTreeMap::new();
        for (mono, coeff) in &self.terms {
            let (exp, rest) = mono.split_symbol(sym);
            by_exp
                .entry(exp)
                .or_insert_with(Poly::zero)
                .insert_term(rest, *coeff);
        }
        by_exp.into_iter().filter(|(_, p)| !p.is_zero()).collect()
    }

    /// Converts this reference polynomial into the optimized interned
    /// representation (used by the differential suite and `perfsuite`).
    pub fn to_optimized(&self) -> crate::Poly {
        let mut out = crate::Poly::zero();
        for (m, c) in self.terms() {
            out += crate::Poly::term(c, m.clone());
        }
        out
    }

    /// Builds a reference polynomial from the optimized representation.
    pub fn from_optimized(p: &crate::Poly) -> Poly {
        let mut out = Poly::zero();
        for (m, c) in p.terms() {
            out.insert_term(m.clone(), c);
        }
        out
    }

    /// Dense coefficient list `[c0, c1, ...]` when the polynomial is
    /// univariate in `sym` with non-negative exponents; `None` otherwise.
    pub fn univariate_coeffs(&self, sym: &Symbol) -> Option<Vec<Rational>> {
        let parts = self.as_univariate(sym);
        let max = parts.last().map(|(e, _)| *e).unwrap_or(0);
        if parts.iter().any(|(e, _)| *e < 0) {
            return None;
        }
        let mut coeffs = vec![Rational::ZERO; (max + 1) as usize];
        for (e, p) in parts {
            coeffs[e as usize] = p.constant_value()?;
        }
        Some(coeffs)
    }
}

impl From<i64> for Poly {
    fn from(n: i64) -> Poly {
        Poly::constant(Rational::from_int(n))
    }
}

impl From<Rational> for Poly {
    fn from(r: Rational) -> Poly {
        Poly::constant(r)
    }
}

impl From<Symbol> for Poly {
    fn from(s: Symbol) -> Poly {
        Poly::var(s)
    }
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.insert_term(m.clone(), *c);
        }
        out
    }
}

impl Add for Poly {
    type Output = Poly;
    fn add(self, rhs: Poly) -> Poly {
        &self + &rhs
    }
}

impl AddAssign for Poly {
    fn add_assign(&mut self, rhs: Poly) {
        for (m, c) in rhs.terms {
            self.insert_term(m, c);
        }
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.insert_term(m.clone(), -*c);
        }
        out
    }
}

impl Sub for Poly {
    type Output = Poly;
    fn sub(self, rhs: Poly) -> Poly {
        &self - &rhs
    }
}

impl SubAssign for Poly {
    fn sub_assign(&mut self, rhs: Poly) {
        for (m, c) in rhs.terms {
            self.insert_term(m, -c);
        }
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &rhs.terms {
                out.insert_term(ma.mul(mb), *ca * *cb);
            }
        }
        out
    }
}

impl Mul for Poly {
    type Output = Poly;
    fn mul(self, rhs: Poly) -> Poly {
        &self * &rhs
    }
}

impl MulAssign for Poly {
    fn mul_assign(&mut self, rhs: Poly) {
        *self = &*self * &rhs;
    }
}

impl Neg for &Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        self.scale(Rational::from_int(-1))
    }
}

impl Neg for Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        -&self
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Highest-degree terms first reads naturally.
        let mut first = true;
        for (mono, coeff) in self.terms.iter().rev() {
            if first {
                if coeff.is_negative() {
                    f.write_str("-")?;
                }
            } else if coeff.is_negative() {
                f.write_str(" - ")?;
            } else {
                f.write_str(" + ")?;
            }
            first = false;
            let mag = coeff.abs();
            if mono.is_one() {
                write!(f, "{mag}")?;
            } else if mag.is_one() {
                write!(f, "{mono}")?;
            } else {
                write!(f, "{mag}*{mono}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RefPoly({self})")
    }
}

impl std::iter::Sum for Poly {
    fn sum<I: Iterator<Item = Poly>>(iter: I) -> Poly {
        let mut acc = Poly::zero();
        for p in iter {
            acc += p;
        }
        acc
    }
}

/// Seed closed-form summation over the reference polynomial type
/// (Faulhaber's formulas, degrees up to 4), preserved verbatim.
pub mod summation {
    use super::Poly;
    use crate::{Rational, Symbol};

    /// `Σ_{t=0}^{m} t^k` as a polynomial in `m`, for `k ≤ 4`.
    pub fn sum_powers(m: &Poly, k: u32) -> Option<Poly> {
        let m1 = m + &Poly::one();
        Some(match k {
            0 => m1,
            1 => (m * &m1).scale(Rational::new(1, 2)),
            2 => {
                let two_m1 = m.scale(2) + Poly::one();
                (&(m * &m1) * &two_m1).scale(Rational::new(1, 6))
            }
            3 => {
                let s1 = (m * &m1).scale(Rational::new(1, 2));
                &s1 * &s1
            }
            4 => {
                // m(m+1)(2m+1)(3m² + 3m − 1)/30
                let two_m1 = m.scale(2) + Poly::one();
                let q = (m * m).scale(3) + m.scale(3) - Poly::one();
                (&(&(m * &m1) * &two_m1) * &q).scale(Rational::new(1, 30))
            }
            _ => return None,
        })
    }

    /// `Σ_{var=0}^{m} p(var)`: sums a polynomial over an index running
    /// from 0 to `m` (inclusive), eliminating `var`.
    pub fn sum_over(p: &Poly, var: &Symbol, m: &Poly) -> Option<Poly> {
        let mut total = Poly::zero();
        for (exp, coeff) in p.as_univariate(var) {
            if exp < 0 {
                return None;
            }
            let s = sum_powers(m, exp as u32)?;
            total += &coeff * &s;
        }
        Some(total)
    }

    /// `Σ_{var=lb}^{ub} p(var)` with unit step.
    pub fn sum_range(p: &Poly, var: &Symbol, lb: &Poly, ub: &Poly) -> Option<Poly> {
        let t = Symbol::new("$sum_t");
        let replacement = lb + &Poly::var(t.clone());
        let shifted = p.subst(var, &replacement).ok()?;
        let m = ub - lb;
        sum_over(&shifted, &t, &m)
    }
}

/// The seed performance expression: a reference [`Poly`] plus per-unknown
/// metadata, exactly as the seed `PerfExpr` aggregated costs. Only the
/// construction/aggregation surface is preserved — the comparison and
/// simplification decision procedures operate on canonical polynomials and
/// are shared with the optimized engine.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct PerfExpr {
    poly: Poly,
    vars: BTreeMap<Symbol, VarInfo>,
}

impl PerfExpr {
    /// The zero-cost expression.
    pub fn zero() -> PerfExpr {
        PerfExpr::default()
    }

    /// A constant cycle count.
    pub fn cycles(n: i64) -> PerfExpr {
        PerfExpr {
            poly: Poly::from(n),
            vars: BTreeMap::new(),
        }
    }

    /// A constant rational cycle count.
    pub fn cycles_rational(r: Rational) -> PerfExpr {
        PerfExpr {
            poly: Poly::constant(r),
            vars: BTreeMap::new(),
        }
    }

    /// Wraps a polynomial with explicit variable metadata; symbols missing
    /// from `vars` get a default `Param` kind with range `[0, 1e9]`.
    pub fn from_poly(poly: Poly, vars: impl IntoIterator<Item = (Symbol, VarInfo)>) -> PerfExpr {
        let mut map: BTreeMap<Symbol, VarInfo> = vars.into_iter().collect();
        for sym in poly.symbols() {
            map.entry(sym).or_insert_with(|| VarInfo::param(0.0, 1e9));
        }
        PerfExpr { poly, vars: map }
    }

    /// A bare unknown as an expression.
    pub fn var(sym: Symbol, info: VarInfo) -> PerfExpr {
        PerfExpr {
            poly: Poly::var(sym.clone()),
            vars: BTreeMap::from([(sym, info)]),
        }
    }

    /// The underlying polynomial.
    pub fn poly(&self) -> &Poly {
        &self.poly
    }

    /// The variable metadata map.
    pub fn vars(&self) -> &BTreeMap<Symbol, VarInfo> {
        &self.vars
    }

    /// Returns `true` if the expression has no unknowns.
    pub fn is_concrete(&self) -> bool {
        self.poly.is_constant()
    }

    /// The exact value when concrete.
    pub fn concrete_cycles(&self) -> Option<Rational> {
        self.poly.constant_value()
    }

    /// Merges variable metadata, keeping the tighter range on conflicts.
    fn merged_vars(&self, other: &PerfExpr) -> BTreeMap<Symbol, VarInfo> {
        let mut out = self.vars.clone();
        for (sym, info) in &other.vars {
            out.entry(sym.clone())
                .and_modify(|e| {
                    if let Some(tight) = e.range.intersect(&info.range) {
                        e.range = tight;
                    }
                })
                .or_insert(*info);
        }
        out
    }

    fn prune_vars(mut self) -> PerfExpr {
        let used = self.poly.symbols();
        self.vars.retain(|s, _| used.contains(s));
        self
    }

    /// Scales the expression by a rational factor.
    pub fn scale(&self, c: impl Into<Rational>) -> PerfExpr {
        PerfExpr {
            poly: self.poly.scale(c),
            vars: self.vars.clone(),
        }
        .prune_vars()
    }

    /// Multiplies by another expression (used for `count × body`).
    pub fn mul(&self, other: &PerfExpr) -> PerfExpr {
        PerfExpr {
            poly: &self.poly * &other.poly,
            vars: self.merged_vars(other),
        }
        .prune_vars()
    }

    /// Cost of repeating this expression a symbolic number of times.
    pub fn repeat_symbolic(&self, count_sym: Symbol, info: VarInfo) -> PerfExpr {
        self.mul(&PerfExpr::var(count_sym, info))
    }

    /// Cost of repeating this expression `count` times.
    pub fn repeat(&self, count: &PerfExpr) -> PerfExpr {
        self.mul(count)
    }

    /// Combines branch costs for a conditional:
    /// `p * then + (1 − p) * else_` with `p` a fresh probability symbol.
    pub fn conditional(prob_sym: Symbol, then_cost: &PerfExpr, else_cost: &PerfExpr) -> PerfExpr {
        let p = PerfExpr::var(prob_sym, VarInfo::branch_prob());
        let one_minus_p = PerfExpr::cycles(1) - p.clone();
        p.mul(then_cost) + one_minus_p.mul(else_cost)
    }

    /// Evaluates numerically with explicit bindings; missing unknowns fall
    /// back to the midpoint of their recorded range.
    pub fn eval_with_defaults(&self, bindings: &HashMap<Symbol, f64>) -> f64 {
        let mut full = bindings.clone();
        for (sym, info) in &self.vars {
            full.entry(sym.clone()).or_insert_with(|| info.range.mid());
        }
        self.poly.eval_f64(&full).unwrap_or(f64::NAN)
    }

    /// The box of recorded variable ranges.
    pub fn range_box(&self) -> HashMap<Symbol, Interval> {
        self.vars
            .iter()
            .map(|(s, i)| (s.clone(), i.range))
            .collect()
    }
}

impl Add for PerfExpr {
    type Output = PerfExpr;
    fn add(self, rhs: PerfExpr) -> PerfExpr {
        let vars = self.merged_vars(&rhs);
        PerfExpr {
            poly: self.poly + rhs.poly,
            vars,
        }
        .prune_vars()
    }
}

impl Sub for PerfExpr {
    type Output = PerfExpr;
    fn sub(self, rhs: PerfExpr) -> PerfExpr {
        let vars = self.merged_vars(&rhs);
        PerfExpr {
            poly: self.poly - rhs.poly,
            vars,
        }
        .prune_vars()
    }
}

impl AddAssign for PerfExpr {
    fn add_assign(&mut self, rhs: PerfExpr) {
        *self = self.clone() + rhs;
    }
}

impl std::iter::Sum for PerfExpr {
    fn sum<I: Iterator<Item = PerfExpr>>(iter: I) -> PerfExpr {
        let mut acc = PerfExpr::zero();
        for e in iter {
            acc += e;
        }
        acc
    }
}

impl fmt::Display for PerfExpr {
    /// `{}` prints the polynomial; `{:#}` appends the variable ranges.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.poly)?;
        if !self.vars.is_empty() && f.alternate() {
            write!(f, "  where ")?;
            let mut first = true;
            for (sym, info) in &self.vars {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{sym} ∈ {} ({})", info.range, info.kind)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    fn var(s: &str) -> Poly {
        Poly::var(sym(s))
    }

    #[test]
    fn seed_semantics_preserved() {
        // A spot-check distilled from the seed test suite: canonical
        // cancellation, display ordering, substitution, summation.
        assert!((var("x") - var("x")).is_zero());
        let p = (var("x") + Poly::from(1)) * (var("x") - Poly::from(1));
        assert_eq!(p.to_string(), "x^2 - 1");
        let q = var("n").scale(2) + Poly::from(7) + (&var("n") * &var("n")).scale(3);
        assert_eq!(q.to_string(), "3*n^2 + 2*n + 7");
        let r = (&var("x") * &var("x") + var("x"))
            .subst(&sym("x"), &(var("y") + Poly::from(1)))
            .unwrap();
        assert_eq!(r.to_string(), "y^2 + 3*y + 2");
    }

    #[test]
    fn seed_summation_preserved() {
        // Σ_{i=1}^{n} (n − i + 1) = n(n+1)/2.
        let i = sym("i");
        let p = var("n") - Poly::var(i.clone()) + Poly::one();
        let s = summation::sum_range(&p, &i, &Poly::one(), &var("n")).unwrap();
        let expected = (&var("n") * &(var("n") + Poly::one())).scale(Rational::new(1, 2));
        assert_eq!(s, expected, "{s}");
    }

    #[test]
    fn seed_perf_expr_preserved() {
        let n = sym("n");
        let body = PerfExpr::cycles(12);
        let total =
            body.repeat_symbolic(n.clone(), VarInfo::loop_bound(1.0, 1e6)) + PerfExpr::cycles(3);
        assert_eq!(total.poly().to_string(), "12*n + 3");
        let p = sym("p1");
        let c = PerfExpr::conditional(p.clone(), &PerfExpr::cycles(10), &PerfExpr::cycles(4));
        assert_eq!(c.poly().to_string(), "6*p1 + 4");
    }
}
