//! Exact rational arithmetic used for polynomial coefficients.
//!
//! Performance expressions aggregate cycle counts scaled by iteration-count
//! divisors and branch probabilities, so coefficients must stay exact:
//! floating point would re-introduce exactly the compounding error the
//! paper's symbolic representation is designed to avoid.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num/den` with `den > 0` and `gcd(num, den) == 1`.
///
/// # Examples
///
/// ```
/// use presage_symbolic::Rational;
///
/// let half = Rational::new(1, 2);
/// let third = Rational::new(1, 3);
/// assert_eq!(half + third, Rational::new(5, 6));
/// assert_eq!((half * third).to_string(), "1/6");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a new rational from a numerator and denominator, reducing to
    /// lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use presage_symbolic::Rational;
    /// assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
    /// assert_eq!(Rational::new(1, -2), Rational::new(-1, 2));
    /// ```
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "rational denominator must be nonzero");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// Creates a rational from an integer.
    pub fn from_int(n: i64) -> Rational {
        Rational { num: n as i128, den: 1 }
    }

    /// The numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` if this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if this rational is exactly one.
    pub fn is_one(&self) -> bool {
        self.num == 1 && self.den == 1
    }

    /// Returns `true` if this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns `true` if this rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Returns `true` if this rational is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Sign of the value: -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum() as i32
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational { num: self.num.abs(), den: self.den }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "cannot invert zero");
        Rational::new(self.den, self.num)
    }

    /// Raises to an integer power (negative exponents invert).
    ///
    /// # Panics
    ///
    /// Panics when raising zero to a negative power.
    pub fn pow(&self, exp: i32) -> Rational {
        if exp == 0 {
            return Rational::ONE;
        }
        let base = if exp < 0 { self.recip() } else { *self };
        let mut acc = Rational::ONE;
        for _ in 0..exp.unsigned_abs() {
            acc = acc * base;
        }
        acc
    }

    /// Converts to the nearest `f64`.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Rounds towards negative infinity to an integer.
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Rounds towards positive infinity to an integer.
    pub fn ceil(&self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    fn checked(num: Option<i128>, den: Option<i128>) -> Rational {
        let num = num.expect("rational arithmetic overflowed i128");
        let den = den.expect("rational arithmetic overflowed i128");
        Rational::new(num, den)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_int(n as i64)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // Reduce by gcd of denominators first to keep magnitudes small.
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        Rational::checked(
            self.num
                .checked_mul(lhs_scale)
                .and_then(|a| rhs.num.checked_mul(rhs_scale).and_then(|b| a.checked_add(b))),
            self.den.checked_mul(lhs_scale),
        )
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to avoid overflow.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Rational::checked(
            (self.num / g1).checked_mul(rhs.num / g2),
            (self.den / g2).checked_mul(rhs.den / g1),
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -self.num, den: self.den }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // den > 0 for both sides, so cross-multiplication preserves order.
        let lhs = self.num.checked_mul(other.den).expect("rational comparison overflowed");
        let rhs = other.num.checked_mul(self.den).expect("rational comparison overflowed");
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_on_construction() {
        assert_eq!(Rational::new(4, 8), Rational::new(1, 2));
        assert_eq!(Rational::new(-4, 8), Rational::new(-1, 2));
        assert_eq!(Rational::new(4, -8), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn pow_and_recip() {
        let a = Rational::new(2, 3);
        assert_eq!(a.pow(2), Rational::new(4, 9));
        assert_eq!(a.pow(-1), Rational::new(3, 2));
        assert_eq!(a.pow(0), Rational::ONE);
        assert_eq!(a.recip(), Rational::new(3, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 2) > Rational::from_int(3));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::from_int(5).floor(), 5);
        assert_eq!(Rational::from_int(5).ceil(), 5);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(-5, 4).to_string(), "-5/4");
    }

    #[test]
    fn to_f64() {
        assert!((Rational::new(1, 4).to_f64() - 0.25).abs() < 1e-12);
    }
}
