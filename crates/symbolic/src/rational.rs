//! Exact rational arithmetic used for polynomial coefficients.
//!
//! Performance expressions aggregate cycle counts scaled by iteration-count
//! divisors and branch probabilities, so coefficients must stay exact:
//! floating point would re-introduce exactly the compounding error the
//! paper's symbolic representation is designed to avoid.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num/den` with `den > 0` and `gcd(num, den) == 1`.
///
/// # Examples
///
/// ```
/// use presage_symbolic::Rational;
///
/// let half = Rational::new(1, 2);
/// let third = Rational::new(1, 3);
/// assert_eq!(half + third, Rational::new(5, 6));
/// assert_eq!((half * third).to_string(), "1/6");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (a, b) = (a.unsigned_abs(), b.unsigned_abs());
    // Software 128-bit division is ~20× a hardware divide; nearly every
    // coefficient in a cost expression fits u64, so run the Euclidean loop
    // at the narrow width whenever both magnitudes allow it.
    if let (Ok(a64), Ok(b64)) = (u64::try_from(a), u64::try_from(b)) {
        return gcd_u64(a64, b64) as i128;
    }
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i128
}

fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a new rational from a numerator and denominator, reducing to
    /// lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use presage_symbolic::Rational;
    /// assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
    /// assert_eq!(Rational::new(1, -2), Rational::new(-1, 2));
    /// ```
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "rational denominator must be nonzero");
        // Narrow path: cost-expression coefficients almost always fit i64,
        // where reduction runs on hardware divides instead of __divti3.
        if let (Ok(n64), Ok(d64)) = (i64::try_from(num), i64::try_from(den)) {
            if let Ok(g) = i64::try_from(gcd_u64(n64.unsigned_abs(), d64.unsigned_abs())) {
                // `den != 0` ⇒ `g ≥ 1`; negate after widening so
                // `i64::MIN / 1` stays representable.
                let (mut n, mut d) = ((n64 / g) as i128, (d64 / g) as i128);
                if d < 0 {
                    n = -n;
                    d = -d;
                }
                return Rational { num: n, den: d };
            }
        }
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// Creates a rational from an integer.
    pub fn from_int(n: i64) -> Rational {
        Rational {
            num: n as i128,
            den: 1,
        }
    }

    /// The numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` if this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if this rational is exactly one.
    pub fn is_one(&self) -> bool {
        self.num == 1 && self.den == 1
    }

    /// Returns `true` if this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns `true` if this rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Returns `true` if this rational is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Sign of the value: -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        self.num.signum() as i32
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "cannot invert zero");
        Rational::new(self.den, self.num)
    }

    /// Raises to an integer power (negative exponents invert).
    ///
    /// # Panics
    ///
    /// Panics when raising zero to a negative power.
    pub fn pow(&self, exp: i32) -> Rational {
        if exp == 0 {
            return Rational::ONE;
        }
        let base = if exp < 0 { self.recip() } else { *self };
        let mut acc = Rational::ONE;
        for _ in 0..exp.unsigned_abs() {
            acc *= base;
        }
        acc
    }

    /// Converts to the nearest `f64`.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Rounds towards negative infinity to an integer.
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Rounds towards positive infinity to an integer.
    pub fn ceil(&self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// `(num, den)` narrowed to i64 when both fit — the gate for the
    /// hardware-arithmetic fast paths in `Add`/`Mul`.
    #[inline]
    fn as_i64_parts(&self) -> Option<(i64, i64)> {
        match (i64::try_from(self.num), i64::try_from(self.den)) {
            (Ok(n), Ok(d)) => Some((n, d)),
            _ => None,
        }
    }

    fn checked(num: Option<i128>, den: Option<i128>) -> Rational {
        let num = num.expect("rational arithmetic overflowed i128");
        let den = den.expect("rational arithmetic overflowed i128");
        Rational::new(num, den)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_int(n as i64)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // Integer + integer (the overwhelming case in cycle accounting)
        // needs no gcd, no division, and no re-reduction.
        if self.den == 1 && rhs.den == 1 {
            return Rational {
                num: self
                    .num
                    .checked_add(rhs.num)
                    .expect("rational arithmetic overflowed i128"),
                den: 1,
            };
        }
        // Narrow path: everything in hardware i64 arithmetic, falling back
        // to the wide path only on an intermediate overflow.
        if let (Some((ln, ld)), Some((rn, rd))) = (self.as_i64_parts(), rhs.as_i64_parts()) {
            let g = gcd_u64(ld as u64, rd as u64) as i64;
            let (ls, rs) = (rd / g, ld / g);
            if let (Some(a), Some(b), Some(d)) =
                (ln.checked_mul(ls), rn.checked_mul(rs), ld.checked_mul(ls))
            {
                if let Some(n) = a.checked_add(b) {
                    return Rational::new(n as i128, d as i128);
                }
            }
        }
        // Reduce by gcd of denominators first to keep magnitudes small.
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        Rational::checked(
            self.num.checked_mul(lhs_scale).and_then(|a| {
                rhs.num
                    .checked_mul(rhs_scale)
                    .and_then(|b| a.checked_add(b))
            }),
            self.den.checked_mul(lhs_scale),
        )
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Integer × integer: the product is already in lowest terms.
        if self.den == 1 && rhs.den == 1 {
            return Rational {
                num: self
                    .num
                    .checked_mul(rhs.num)
                    .expect("rational arithmetic overflowed i128"),
                den: 1,
            };
        }
        // Narrow path: cross-reduce and multiply in hardware i64
        // arithmetic. Both inputs are in lowest terms, so the cross-reduced
        // product already is too — no re-reduction needed.
        if let (Some((ln, ld)), Some((rn, rd))) = (self.as_i64_parts(), rhs.as_i64_parts()) {
            let g1 = gcd_u64(ln.unsigned_abs(), rd as u64).max(1) as i64;
            let g2 = gcd_u64(rn.unsigned_abs(), ld as u64).max(1) as i64;
            if let (Some(n), Some(d)) = (
                (ln / g1).checked_mul(rn / g2),
                (ld / g2).checked_mul(rd / g1),
            ) {
                if n == 0 {
                    return Rational::ZERO;
                }
                return Rational {
                    num: n as i128,
                    den: d as i128,
                };
            }
        }
        // Cross-reduce before multiplying to avoid overflow.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Rational::checked(
            (self.num / g1).checked_mul(rhs.num / g2),
            (self.den / g2).checked_mul(rhs.den / g1),
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    // Division via the reciprocal is the intended normalization path.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Integer vs integer compares directly.
        if self.den == 1 && other.den == 1 {
            return self.num.cmp(&other.num);
        }
        // Fast discriminations first: sign classes and equality need no
        // multiplication at all.
        let sign = self.num.signum().cmp(&other.num.signum());
        if sign != Ordering::Equal {
            return sign;
        }
        if self == other {
            return Ordering::Equal;
        }
        // den > 0 for both sides, so cross-multiplication preserves order.
        // Cross-reduce by the gcd pairs first: both values are already in
        // lowest terms, so gcd(self.num, other.num) and gcd(self.den,
        // other.den) divide out of both products without changing the sign
        // of the difference, keeping boundary-sized operands in range.
        let gn = gcd(self.num, other.num).max(1);
        let gd = gcd(self.den, other.den).max(1);
        let (ln, ld) = (self.num / gn, self.den / gd);
        let (rn, rd) = (other.num / gn, other.den / gd);
        match (ln.checked_mul(rd), rn.checked_mul(ld)) {
            (Some(lhs), Some(rhs)) => lhs.cmp(&rhs),
            // Still out of range after reduction: compare by continued
            // fractions (exact, no wide arithmetic). Signs are equal and
            // nonzero here, so work on magnitudes and flip for negatives.
            _ => {
                let flip = self.num < 0;
                let ord = cmp_frac(
                    ln.unsigned_abs(),
                    ld.unsigned_abs(),
                    rn.unsigned_abs(),
                    rd.unsigned_abs(),
                );
                if flip {
                    ord.reverse()
                } else {
                    ord
                }
            }
        }
    }
}

/// Compares `a/b` with `c/d` (all nonzero magnitudes) by Euclidean descent
/// on the continued-fraction expansions — exact for any i128 inputs without
/// ever widening a multiplication.
fn cmp_frac(mut a: u128, mut b: u128, mut c: u128, mut d: u128) -> Ordering {
    loop {
        let (qa, ra) = (a / b, a % b);
        let (qc, rc) = (c / d, c % d);
        if qa != qc {
            return qa.cmp(&qc);
        }
        // Equal integer parts: compare fractional remainders ra/b vs rc/d,
        // i.e. the reciprocals d/rc vs b/ra with the order reversed.
        match (ra == 0, rc == 0) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            (false, false) => {}
        }
        (a, b, c, d) = (d, rc, b, ra);
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_on_construction() {
        assert_eq!(Rational::new(4, 8), Rational::new(1, 2));
        assert_eq!(Rational::new(-4, 8), Rational::new(-1, 2));
        assert_eq!(Rational::new(4, -8), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn pow_and_recip() {
        let a = Rational::new(2, 3);
        assert_eq!(a.pow(2), Rational::new(4, 9));
        assert_eq!(a.pow(-1), Rational::new(3, 2));
        assert_eq!(a.pow(0), Rational::ONE);
        assert_eq!(a.recip(), Rational::new(3, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 2) > Rational::from_int(3));
    }

    #[test]
    fn ordering_near_i128_boundary_does_not_overflow() {
        // Cross-reduction handles shared factors: naive cross-multiply of
        // MAX/2 vs MAX/3 computes MAX*3 and panics.
        let max = i128::MAX;
        assert!(Rational::new(max, 3) < Rational::new(max, 2));
        assert!(Rational::new(-max, 2) < Rational::new(-max, 3));
        assert_eq!(
            Rational::new(max, 2).cmp(&Rational::new(max, 2)),
            Ordering::Equal
        );

        // Coprime case where reduction cannot help: (2^100+1)/2^100 vs
        // 2^100/(2^100-1); both cross-products are ~2^200. The continued-
        // fraction fallback must still get the order right.
        let big = 1i128 << 100;
        let a = Rational::new(big + 1, big);
        let b = Rational::new(big, big - 1);
        assert!(a < b);
        assert!(-a > -b);
        assert!(b > a);

        // Mixed signs and zero stay trivially ordered.
        assert!(Rational::new(-max, 1) < Rational::ZERO);
        assert!(Rational::ZERO < Rational::new(1, max));
        assert!(Rational::new(max, 1) > Rational::new(max - 1, 1));
    }

    #[test]
    fn ordering_continued_fraction_descends_multiple_levels() {
        // 2^100/(2^100+3) vs (2^100-2)/(2^100+1): equal integer parts (0),
        // forcing the Euclidean descent to recurse past the first level.
        let big = 1i128 << 100;
        let a = Rational::new(big, big + 3);
        let b = Rational::new(big - 2, big + 1);
        // a = 1/(1 + 3/2^100), b = 1/(1 + 3/(2^100-2)); 3/2^100 < 3/(2^100-2)
        // so a > b.
        assert!(a > b);
        assert!(-a < -b);
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::from_int(5).floor(), 5);
        assert_eq!(Rational::from_int(5).ceil(), 5);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(-5, 4).to_string(), "-5/4");
    }

    #[test]
    fn to_f64() {
        assert!((Rational::new(1, 4).to_f64() - 0.25).abs() < 1e-12);
    }
}
