//! Symbolic variables appearing in performance expressions.
//!
//! Variables stand for the unknowns the paper refuses to guess prematurely:
//! loop bounds, branch probabilities, problem-size parameters. A [`Symbol`]
//! is a cheaply clonable interned name; ordering and hashing follow the name
//! so that polynomial canonical forms are deterministic.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An interned variable name used in polynomials and performance expressions.
///
/// # Examples
///
/// ```
/// use presage_symbolic::Symbol;
///
/// let n = Symbol::new("n");
/// assert_eq!(n.name(), "n");
/// assert_eq!(n, Symbol::new("n"));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates (or reuses) a symbol with the given name.
    pub fn new(name: impl AsRef<str>) -> Symbol {
        Symbol(Arc::from(name.as_ref()))
    }

    /// The canonical shared symbol for `name`: repeated lookups clone the
    /// interned `Arc` instead of allocating a fresh string. Prefer this in
    /// hot paths that re-derive the same symbol on every prediction (loop
    /// variables, bound names); `Symbol::new` remains correct everywhere
    /// since equality follows the name either way.
    pub fn interned(name: &str) -> Symbol {
        crate::intern::symbol_named(name)
    }

    /// The symbol's textual name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::new(s)
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn equality_by_name() {
        assert_eq!(Symbol::new("n"), Symbol::new("n"));
        assert_ne!(Symbol::new("n"), Symbol::new("m"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![Symbol::new("p"), Symbol::new("a"), Symbol::new("n")];
        v.sort();
        let names: Vec<&str> = v.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["a", "n", "p"]);
    }

    #[test]
    fn usable_as_string_keyed_map_key() {
        let mut m: HashMap<Symbol, i32> = HashMap::new();
        m.insert(Symbol::new("n"), 7);
        assert_eq!(m.get("n"), Some(&7));
    }

    #[test]
    fn display() {
        assert_eq!(Symbol::new("ub_1").to_string(), "ub_1");
    }
}
