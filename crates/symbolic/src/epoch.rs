//! Epoch/generation coordinator for the process-wide intern arenas and
//! memo tables.
//!
//! The interned polynomial arena ([`crate::intern`]), the `BlockIr` arena
//! in `presage-translate`, and the sharded L2 memos leak or retain their
//! entries forever in the original leak-and-cap design — correct for
//! batch runs, unbounded growth for a long-lived server handling millions
//! of distinct programs. This module replaces leak-and-cap with
//! **epoch-based reclamation**:
//!
//! - A process-wide epoch counter advances between job waves
//!   ([`advance`]), never during one.
//! - Every arena entry carries a *generation* stamp: the epoch in which
//!   it was last interned or re-interned (a hit re-stamps under the same
//!   shard lock the probe already holds).
//! - A thread doing symbolic work is a *participant*: it pins the current
//!   epoch for the duration of each operation (or a whole wave, via
//!   [`pin`]). [`advance`] reclaims only entries whose generation has been
//!   retired by every participant — strictly older than every active pin
//!   and untouched for at least one full epoch.
//!
//! # Why id-stability holds across reclamation
//!
//! Three different id classes get three different treatments:
//!
//! - **Symbol and monomial ids are never reclaimed.** [`crate::Poly`]
//!   values embed `MonoId`s and flow into caller-held results
//!   (`PerfExpr`s, prediction caches, cost trees) that outlive any epoch,
//!   so those tables stay append-only. Their growth is bounded by the
//!   number of distinct variable names × exponent shapes ever seen —
//!   structurally tiny next to the per-program polynomial and block
//!   churn.
//! - **Polynomial ids are epoch-confined.** A `PolyId` appears only in
//!   memo keys/values and in-flight computation, never inside a `Poly`.
//!   Every L2 memo holding `PolyId`s is cleared on [`advance`] before any
//!   slot is freed, and every thread-local L1 is stamped with its pin
//!   epoch and self-clears on first use in a later epoch
//!   ([`ActiveGuard::epoch`]). A freed slot is therefore unreachable:
//!   reuse of its index by a later generation cannot collide with any id
//!   still held anywhere.
//! - **Block ids are never reused.** The `BlockIr` arena frees retired
//!   block *content* but hands out monotonically increasing ids, so id
//!   equality implies content equality forever — a scheduling-memo key
//!   built from a stale id can never alias a different block.
//!
//! The memory-ordering contract mirrors classic epoch-based reclamation:
//! a participant publishes its pinned epoch with a store–validate loop
//! (store the observed epoch, re-read the counter, repeat if it moved),
//! and [`advance`] bumps the counter *before* reading participant slots.
//! Under the `SeqCst` total order, either the reclaimer sees the pin (and
//! retires nothing the pinned thread could hold) or the participant sees
//! the new epoch (and re-pins at it, clearing stale L1 state before
//! touching any id).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Participant slot value meaning "not inside any symbolic operation".
const IDLE: u64 = 0;
/// Participant slot value meaning "thread exited; prune the slot".
const RETIRED: u64 = u64::MAX;

/// The process-wide epoch counter. Starts at 1 so [`IDLE`] (0) can never
/// alias a real pinned epoch.
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// Serializes [`advance`] calls (reclamation must not interleave).
static ADVANCE: Mutex<()> = Mutex::new(());

/// A registered reclamation hook: given the retire-before epoch, frees
/// what it safely can and reports how many entries went.
type Reclaimer = Arc<dyn Fn(u64) -> usize + Send + Sync>;

struct Registry {
    participants: Vec<Arc<AtomicU64>>,
    reclaimers: Vec<(&'static str, Reclaimer)>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            participants: Vec::new(),
            reclaimers: Vec::new(),
        })
    })
}

/// Per-thread participant state: one shared atomic slot (read by
/// [`advance`]) plus a reentrancy depth so nested operations reuse the
/// outermost pin for the cost of a `Cell` increment.
struct Participant {
    slot: Arc<AtomicU64>,
    depth: Cell<u32>,
    epoch: Cell<u64>,
}

impl Participant {
    fn new() -> Participant {
        let slot = Arc::new(AtomicU64::new(IDLE));
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .participants
            .push(Arc::clone(&slot));
        Participant {
            slot,
            depth: Cell::new(0),
            epoch: Cell::new(0),
        }
    }
}

impl Drop for Participant {
    fn drop(&mut self) {
        // Mark for pruning; `advance` drops the Arc on its next pass.
        self.slot.store(RETIRED, Ordering::SeqCst);
    }
}

thread_local! {
    static PARTICIPANT: Participant = Participant::new();
}

/// RAII pin marking the current thread active at [`ActiveGuard::epoch`].
///
/// While any guard is alive on this thread, [`advance`] will not reclaim
/// an entry stamped at or after the guard's epoch — which covers every id
/// the thread can legally hold (ids are obtained while pinned, and the
/// arenas stamp on intern/hit with the then-current epoch, which is never
/// behind any validated pin).
#[derive(Debug)]
pub struct ActiveGuard {
    epoch: u64,
}

impl ActiveGuard {
    /// The epoch this thread is pinned at. Thread-local L1 memos stamp
    /// themselves with this value and self-clear when it changes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        PARTICIPANT.with(|p| {
            let d = p.depth.get() - 1;
            p.depth.set(d);
            if d == 0 {
                p.slot.store(IDLE, Ordering::SeqCst);
            }
        });
    }
}

/// Pins the calling thread at the current epoch (store–validate loop) and
/// returns the guard. Reentrant: nested calls reuse the outermost pin.
pub fn pin() -> ActiveGuard {
    PARTICIPANT.with(|p| {
        let d = p.depth.get();
        if d == 0 {
            let mut e = EPOCH.load(Ordering::SeqCst);
            loop {
                p.slot.store(e, Ordering::SeqCst);
                let now = EPOCH.load(Ordering::SeqCst);
                if now == e {
                    break;
                }
                e = now;
            }
            p.epoch.set(e);
        }
        p.depth.set(d + 1);
        ActiveGuard {
            epoch: p.epoch.get(),
        }
    })
}

/// The current epoch (relaxed; for generation stamps and telemetry).
pub fn current() -> u64 {
    EPOCH.load(Ordering::Relaxed)
}

/// Registers a named reclaimer hook, called by [`advance`] with the
/// retire bound: the hook must free entries whose generation is strictly
/// below the bound and return how many it freed. Arenas outside this
/// crate (the `BlockIr` arena, the core scheduling memos) register here
/// at first use.
pub fn register_reclaimer(
    name: &'static str,
    f: impl Fn(u64) -> usize + Send + Sync + 'static,
) -> usize {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.reclaimers.push((name, Arc::new(f)));
    reg.reclaimers.len()
}

/// One arena's share of an [`advance`] pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReclaimEntry {
    /// Reclaimer name (`"poly"`, `"blockir"`, …).
    pub name: &'static str,
    /// Entries freed by this pass.
    pub reclaimed: usize,
}

/// What one [`advance`] call did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdvanceReport {
    /// The epoch after the advance.
    pub epoch: u64,
    /// Entries with generation `< retire_before` were reclaimed. Equal to
    /// `min(active pins, epoch) − 1`: an entry survives the epoch after
    /// its last touch and anything an active pin could still reference.
    pub retire_before: u64,
    /// Threads that were pinned while this advance ran (their epochs
    /// lower-bound `retire_before`).
    pub active_pins: usize,
    /// Per-arena reclamation counts, coordinator-internal polys first.
    pub reclaimed: Vec<ReclaimEntry>,
}

impl AdvanceReport {
    /// Total entries reclaimed across every arena.
    pub fn total_reclaimed(&self) -> usize {
        self.reclaimed.iter().map(|r| r.reclaimed).sum()
    }
}

/// Advances the epoch and reclaims retired arena entries.
///
/// Call this **between job waves** — the coordinator's contract is that
/// threads doing symbolic work concurrently with an advance hold a pin
/// (every memoized operation pins itself; batch workers additionally pin
/// once per worker). The pass:
///
/// 1. bumps the epoch counter;
/// 2. computes the retire bound from the oldest active pin;
/// 3. clears every L2 memo that stores `PolyId`s (so no reclaimed id can
///    be served later);
/// 4. frees polynomial-arena slots and runs every registered reclaimer
///    (the `BlockIr` arena, the core scheduling L2s) with the bound.
pub fn advance() -> AdvanceReport {
    let _serial = ADVANCE.lock().unwrap_or_else(|e| e.into_inner());
    let new_epoch = EPOCH.fetch_add(1, Ordering::SeqCst) + 1;
    // Snapshot participants and hooks, then drop the registry lock before
    // touching any arena: a hook takes arena locks, and a thread's first
    // pin registers itself (possibly while holding an arena lock), so
    // holding the registry across hook calls could deadlock.
    let (active_pins, retire_before, hooks) = {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.participants
            .retain(|p| p.load(Ordering::SeqCst) != RETIRED);
        let mut active_pins = 0usize;
        let mut min_active = new_epoch;
        for p in &reg.participants {
            let e = p.load(Ordering::SeqCst);
            if e != IDLE {
                active_pins += 1;
                min_active = min_active.min(e);
            }
        }
        let hooks: Vec<_> = reg
            .reclaimers
            .iter()
            .map(|(n, f)| (*n, Arc::clone(f)))
            .collect();
        (active_pins, min_active.saturating_sub(1), hooks)
    };
    // Clear PolyId-bearing L2 memos before freeing any slot: after this,
    // the only live PolyIds are on pinned threads' stacks and L1s, all of
    // which reference generations at or above their pin epoch.
    crate::poly::clear_l2_memos();
    crate::summation::clear_l2_memos();
    let mut reclaimed = vec![ReclaimEntry {
        name: "poly",
        reclaimed: crate::intern::reclaim_polys(retire_before),
    }];
    for (name, f) in &hooks {
        reclaimed.push(ReclaimEntry {
            name,
            reclaimed: f(retire_before),
        });
    }
    AdvanceReport {
        epoch: new_epoch,
        retire_before,
        active_pins,
        reclaimed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_is_reentrant_and_idles_on_release() {
        let outer = pin();
        let outer_epoch = outer.epoch();
        {
            let inner = pin();
            assert_eq!(inner.epoch(), outer_epoch, "nested pin reuses the outer");
        }
        drop(outer);
        let fresh = pin();
        assert!(fresh.epoch() >= outer_epoch);
    }

    #[test]
    fn advance_monotonically_increases_epoch() {
        let before = current();
        let report = advance();
        assert!(report.epoch > before);
        assert!(current() >= report.epoch);
        assert!(report.retire_before < report.epoch);
    }

    #[test]
    fn active_pin_bounds_the_retire_horizon() {
        let g = pin();
        let report = advance();
        assert!(report.active_pins >= 1);
        assert!(
            report.retire_before < g.epoch(),
            "a pinned epoch must never be retired: bound {} vs pin {}",
            report.retire_before,
            g.epoch()
        );
    }

    #[test]
    fn pinned_thread_revalidates_against_racing_advance() {
        // Hammer pin/advance from two sides; the invariant under test is
        // that a validated pin is never below what a concurrent advance
        // used as its bound (checked via the report).
        let stop = std::sync::atomic::AtomicBool::new(false);
        let stop = &stop;
        std::thread::scope(|s| {
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let g = pin();
                    // The slot must carry our epoch while pinned.
                    assert!(g.epoch() >= 1);
                }
            });
            for _ in 0..64 {
                let r = advance();
                assert!(r.retire_before < r.epoch);
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn registered_reclaimers_run_with_the_bound() {
        use std::sync::atomic::AtomicU64 as A;
        static SEEN: A = A::new(u64::MAX);
        register_reclaimer("epoch-test-probe", |bound| {
            SEEN.store(bound, Ordering::SeqCst);
            3
        });
        let report = advance();
        assert_eq!(SEEN.load(Ordering::SeqCst), report.retire_before);
        assert!(report
            .reclaimed
            .iter()
            .any(|r| r.name == "epoch-test-probe" && r.reclaimed == 3));
        assert!(report.total_reclaimed() >= 3);
    }
}
