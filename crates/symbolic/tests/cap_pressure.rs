//! Cap-pressure and stale-L1 regression suite for the epoch-reclaimed
//! polynomial arena.
//!
//! Runs as its own test binary on purpose: the per-shard cap override
//! ([`set_poly_shard_cap_for_tests`]) is process-global, so confining it
//! here keeps the main unit-test binary's arena behavior untouched. The
//! tests below still serialize on [`CAP_LOCK`] against each other.

use presage_symbolic::{poly_id_is_live, set_poly_shard_cap_for_tests, Poly, Symbol};
use std::sync::Mutex;

/// The un-interned sentinel (`intern::POLY_UNINTERNED`). Real ids pack a
/// shard and a 16-bit slot index, so they can never reach it.
const UNINTERNED: u32 = u32::MAX;

static CAP_LOCK: Mutex<()> = Mutex::new(());

/// Restores the default cap even if the test panics.
struct CapGuard;

impl Drop for CapGuard {
    fn drop(&mut self) {
        set_poly_shard_cap_for_tests(0);
    }
}

fn var(name: &str) -> Poly {
    Poly::var(Symbol::new(name))
}

/// A family of structurally distinct polynomials over one symbol.
fn family(sym: &str, n: usize) -> Vec<Poly> {
    (0..n)
        .map(|k| {
            let x = var(sym);
            &(&x * &x) * &Poly::from(k as i64 + 1) + x + Poly::from(7)
        })
        .collect()
}

#[test]
fn uninterned_fallback_is_bit_identical_and_never_aliases_ids() {
    let _lock = CAP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = CapGuard;

    // Warm every shard so a cap of 1 saturates all of them: shard
    // selection is by content hash, so a few hundred distinct shapes
    // cover the shard space with overwhelming probability.
    let _pin = presage_symbolic::epoch::pin();
    for p in family("warm", 256) {
        let id = p.interned_id_for_tests();
        assert_ne!(id, UNINTERNED, "default cap must not saturate");
        assert!(poly_id_is_live(id));
    }

    // Under pressure: every *new* shape reports the sentinel, which can
    // never alias a live id, and every operation still computes — the
    // memo layers are skipped, not corrupted.
    set_poly_shard_cap_for_tests(1);
    let pressured = family("pressed", 64);
    let mut pressured_results = Vec::new();
    for p in &pressured {
        assert_eq!(p.interned_id_for_tests(), UNINTERNED);
        assert!(!poly_id_is_live(UNINTERNED));
        pressured_results.push((p.pow(3), p * p));
    }

    // Lift the cap: the same expressions now intern and memoize. The
    // memoized results must be bit-identical to the fallback-path ones.
    set_poly_shard_cap_for_tests(0);
    for (p, (pow3, sq)) in pressured.iter().zip(&pressured_results) {
        assert_eq!(&p.pow(3), pow3, "memoized pow diverged from fallback");
        assert_eq!(&(p * p), sq, "memoized mul diverged from fallback");
        let id = p.interned_id_for_tests();
        assert_ne!(id, UNINTERNED);
        assert!(poly_id_is_live(id));
    }
}

#[test]
fn recycled_slots_after_advance_never_produce_the_sentinel() {
    let _lock = CAP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = CapGuard;

    // Intern a generation of polynomials, then retire it.
    let first: Vec<u32> = {
        let _pin = presage_symbolic::epoch::pin();
        family("gen_a", 64)
            .iter()
            .map(|p| p.interned_id_for_tests())
            .collect()
    };
    assert!(first.iter().all(|&id| id != UNINTERNED));
    for _ in 0..64 {
        presage_symbolic::epoch::advance();
        if first.iter().all(|&id| !poly_id_is_live(id)) {
            break;
        }
    }
    assert!(
        first.iter().all(|&id| !poly_id_is_live(id)),
        "first generation was never reclaimed"
    );

    // The next generation recycles the freed slots: its ids are live,
    // mutually distinct, and (like all packed ids) distinct from the
    // sentinel — id reuse across generations never collides with the
    // fallback key space.
    let _pin = presage_symbolic::epoch::pin();
    let second: Vec<u32> = family("gen_b", 64)
        .iter()
        .map(|p| p.interned_id_for_tests())
        .collect();
    let mut dedup = second.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), second.len(), "recycled ids must stay distinct");
    for &id in &second {
        assert_ne!(id, UNINTERNED);
        assert!(poly_id_is_live(id));
    }
}

#[test]
fn stale_l1_entries_never_survive_a_shard_wipe() {
    let _lock = CAP_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // First hit: memoizes the cube in the thread-local L1 and the shared
    // L2, keyed by the probe's interned id. Three terms, so the probe is
    // past the small-poly fast path that skips memoization.
    let v = var("stale_l1_probe");
    let x = &v * &v + v + Poly::from(3);
    let before = x.pow(3);

    // Force the wipe the bug needs: an epoch advance clears every L2
    // shard and reclaims the arena entries the L1 values point at...
    presage_symbolic::epoch::advance();

    // ...then stuff the freed slots with unrelated content, so an
    // un-stamped L1 entry would now resolve its cached id to garbage.
    {
        let _pin = presage_symbolic::epoch::pin();
        for p in family("stale_l1_filler", 128) {
            let _ = p.interned_id_for_tests();
        }
    }

    // Second hit: the epoch stamp must invalidate the L1 before the
    // lookup, so the recomputed value is bit-identical to the first —
    // and, per the memo counters, it must NOT have been served from the
    // (stale) L1: the advance wiped the L2 shards, so an L1 hit here
    // could only be a pre-wipe entry resolving a reclaimed id.
    presage_symbolic::memo::take_thread_stats();
    let after = x.pow(3);
    let stats = presage_symbolic::memo::take_thread_stats();
    assert_eq!(
        stats.l1_hits, 0,
        "stale L1 entry served across an epoch boundary"
    );
    assert!(stats.misses > 0, "the recomputation must actually run");
    assert_eq!(before, after, "stale L1 hit crossed an epoch");
    assert_eq!(
        before.to_string(),
        after.to_string(),
        "rendered forms must agree too"
    );
}
