//! The conventional operation-count baseline.
//!
//! "If not applied carefully, a conventional cost estimation model may be
//! off by a factor of ten or more!" — this module is that conventional
//! model: the cost of a block is the sum of its operations' full latencies,
//! ignoring functional-unit parallelism, pipelining, and overlap.

use presage_machine::MachineDesc;
use presage_translate::BlockIr;

/// Sequential latency-sum cost of a block.
pub fn naive_block_cost(machine: &MachineDesc, block: &BlockIr) -> u32 {
    block
        .ops
        .iter()
        .map(|op| {
            machine
                .expand(op.basic)
                .iter()
                .map(|id| machine.atomic(*id).latency())
                .sum::<u32>()
        })
        .sum()
}

/// Naive loop cost: `iterations × per-iteration latency sum` (no overlap).
pub fn naive_loop_cost(machine: &MachineDesc, body: &BlockIr, iterations: u32) -> u64 {
    naive_block_cost(machine, body) as u64 * iterations as u64
}

/// An even cruder flat model: every operation costs one cycle (pure
/// instruction counting). Included as the lower anchor in comparisons.
pub fn op_count_cost(block: &BlockIr) -> u32 {
    block.ops.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::{machines, BasicOp};
    use presage_translate::{BlockIr, ValueDef};

    fn independent(n: usize) -> BlockIr {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        for _ in 0..n {
            b.emit(BasicOp::FAdd, vec![x, x]);
        }
        b
    }

    #[test]
    fn naive_sums_latencies() {
        let m = machines::power_like();
        assert_eq!(naive_block_cost(&m, &independent(5)), 10, "5 × latency 2");
    }

    #[test]
    fn naive_ignores_parallelism() {
        let m = machines::power_like();
        let b = independent(16);
        let naive = naive_block_cost(&m, &b);
        let actual = crate::scheduler::simulate_block(&m, &b).unwrap().makespan;
        assert!(
            naive as f64 / actual as f64 >= 1.8,
            "naive {naive} vs sim {actual}"
        );
    }

    #[test]
    fn loop_cost_multiplies() {
        let m = machines::power_like();
        assert_eq!(naive_loop_cost(&m, &independent(2), 100), 400);
    }

    #[test]
    fn op_count_counts() {
        assert_eq!(op_count_cost(&independent(7)), 7);
    }
}
