//! Retained cycle-driven list scheduler — the oracle for
//! [`crate::scheduler`].
//!
//! This is the original reference engine (the repo's established oracle
//! pattern, like `core::reference::NaivePlacer` and `symbolic::reference`):
//! at each cycle every ready micro-operation is considered in
//! critical-path priority order and issued if all its functional-unit
//! components are free, with per-instance `Vec<bool>` busy bitmaps and the
//! clock advancing one cycle at a time. The event-driven engine must
//! produce bit-identical makespans, issue cycles, and per-class busy
//! counts (see `tests/differential.rs`); anything this engine computes in
//! O(cycles × micros × unit-instances), the event-driven engine computes
//! by jumping between completion/free events.
//!
//! Both engines share the micro-operation expansion in `crate::micro`
//! (including the dependence-threading fix for zero-cost operations), so
//! the differential test isolates exactly the scheduling algorithms.

use crate::micro::{busy_map, expand_blocks, loop_measurement};
use crate::scheduler::{SimError, SimResult};
use presage_machine::{MachineDesc, UnitClass};
use presage_translate::BlockIr;

/// Cycle budget before the reference declares non-convergence. Generous:
/// every well-formed stream retires at least one micro every
/// `max_latency × micros` cycles.
const CYCLE_CAP: u32 = 10_000_000;

/// Free/busy timeline per unit instance.
struct Timeline {
    class: UnitClass,
    busy: Vec<bool>,
}

impl Timeline {
    fn is_free(&self, start: u32, len: u32) -> bool {
        (start..start + len).all(|t| !self.busy.get(t as usize).copied().unwrap_or(false))
    }

    fn reserve(&mut self, start: u32, len: u32) {
        let end = (start + len) as usize;
        if self.busy.len() < end {
            self.busy.resize(end.max(self.busy.len() * 2), false);
        }
        for t in start..start + len {
            self.busy[t as usize] = true;
        }
    }
}

/// Simulates one straight-line block with the cycle-driven engine.
///
/// # Errors
///
/// Returns [`SimError::NonConvergence`] if the stream is not fully issued
/// within the cycle budget.
pub fn simulate_block(machine: &MachineDesc, block: &BlockIr) -> Result<SimResult, SimError> {
    simulate_blocks(machine, std::iter::once(block))
}

/// Simulates a sequence of blocks as one stream with **independent**
/// inter-block dependences, cycle by cycle. See
/// [`crate::scheduler::simulate_blocks`] for the stream semantics.
///
/// # Errors
///
/// Returns [`SimError::NonConvergence`] if the stream is not fully issued
/// within the cycle budget.
pub fn simulate_blocks<'a>(
    machine: &MachineDesc,
    blocks: impl IntoIterator<Item = &'a BlockIr>,
) -> Result<SimResult, SimError> {
    let stream = expand_blocks(machine, blocks);
    let n = stream.n;

    let mut timelines: Vec<Timeline> = Vec::new();
    for pool in machine.units() {
        for _ in 0..pool.count {
            timelines.push(Timeline {
                class: pool.class,
                busy: Vec::new(),
            });
        }
    }

    let mut finish = vec![u32::MAX; n];
    let mut issued = vec![false; n];
    let mut issue_of_op: Vec<Option<u32>> = vec![None; stream.n_ops];
    let mut remaining = n;
    let mut cycle: u32 = 0;
    let mut makespan = 0;
    // Static scan order: priority descending, stream position ascending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|a, b| stream.priority[*b].cmp(&stream.priority[*a]).then(a.cmp(b)));

    while remaining > 0 {
        for &i in &order {
            if issued[i] {
                continue;
            }
            // Ready: all deps finished by this cycle.
            let ready = stream
                .deps_of(i)
                .iter()
                .all(|&d| finish[d as usize] != u32::MAX && finish[d as usize] <= cycle);
            if !ready {
                continue;
            }
            // Structural: each component needs a free instance now.
            let mut picks: Vec<(usize, u32)> = Vec::new();
            let ok = stream.costs_of(i).iter().all(|&(class, noncov, _)| {
                if noncov == 0 {
                    return true;
                }
                match timelines.iter().enumerate().find(|(ti, t)| {
                    t.class == class
                        && t.is_free(cycle, noncov)
                        && !picks.iter().any(|(pi, _)| pi == ti)
                }) {
                    Some((ti, _)) => {
                        picks.push((ti, noncov));
                        true
                    }
                    None => false,
                }
            });
            if !ok {
                continue;
            }
            for (ti, len) in picks {
                timelines[ti].reserve(cycle, len);
            }
            issued[i] = true;
            finish[i] = cycle + stream.latency[i];
            makespan = makespan.max(finish[i]);
            let op = stream.source_op[i] as usize;
            if issue_of_op[op].is_none() {
                issue_of_op[op] = Some(cycle);
            }
            remaining -= 1;
        }
        cycle += 1;
        if cycle >= CYCLE_CAP {
            return Err(SimError::NonConvergence { remaining });
        }
    }

    let per_class: Vec<(UnitClass, u32)> = timelines
        .iter()
        .map(|t| (t.class, t.busy.iter().filter(|b| **b).count() as u32))
        .collect();
    Ok(SimResult {
        makespan,
        issue_cycles: issue_of_op,
        unit_busy: busy_map(&per_class),
    })
}

/// Simulates `iterations` overlapped copies of a loop body and reports
/// `(first_iteration_makespan, steady_cycles_per_iteration)`.
///
/// # Errors
///
/// Returns [`SimError::NonConvergence`] if either stream is not fully
/// issued within the cycle budget.
///
/// # Panics
///
/// Panics if `iterations < 2`.
pub fn simulate_loop(
    machine: &MachineDesc,
    body: &BlockIr,
    iterations: u32,
) -> Result<(u32, f64), SimError> {
    loop_measurement(body, iterations, |blocks| {
        simulate_blocks(machine, blocks.iter().copied())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::{machines, BasicOp};
    use presage_translate::ValueDef;

    fn chain(n: usize) -> BlockIr {
        let mut b = BlockIr::new();
        let mut v = b.add_value(ValueDef::External("x".into()));
        for _ in 0..n {
            v = b.emit(BasicOp::FAdd, vec![v, v]);
        }
        b
    }

    #[test]
    fn chain_pays_full_latency() {
        let m = machines::power_like();
        let r = simulate_block(&m, &chain(5)).unwrap();
        assert_eq!(r.makespan, 10, "5 × latency-2 adds");
    }

    #[test]
    fn issue_cycles_are_first_micro() {
        // On risc1 an FMA decomposes into two chained micros; the op's
        // issue cycle is the first micro's, not the last's.
        let m = machines::risc1();
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        b.emit(BasicOp::Fma, vec![x, x, x]);
        let r = simulate_block(&m, &b).unwrap();
        assert_eq!(r.issue_cycles, vec![Some(0)]);
        assert_eq!(r.makespan, 6, "two chained 1+2 micros");
    }

    #[test]
    fn dependence_threads_through_zero_cost_op() {
        // Regression (PR 4): a producer whose entire expansion has empty
        // costs used to vanish from its dependents' dep sets, letting
        // them issue at cycle 0 before their transitive producers.
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let a = b.emit(BasicOp::FAdd, vec![x, x]);
        let n = b.emit(BasicOp::Nop, vec![a]);
        b.emit(BasicOp::FAdd, vec![n, n]);
        let r = simulate_block(&m, &b).unwrap();
        assert_eq!(r.issue_cycles, vec![Some(0), None, Some(2)]);
        assert_eq!(r.makespan, 4);
    }

    #[test]
    fn chained_zero_cost_ops_thread_transitively() {
        // fadd -> nop -> nop -> fadd still pays the producer's latency.
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let a = b.emit(BasicOp::FAdd, vec![x, x]);
        let n1 = b.emit(BasicOp::Nop, vec![a]);
        let n2 = b.emit(BasicOp::Nop, vec![n1]);
        b.emit(BasicOp::FAdd, vec![n2, n2]);
        let r = simulate_block(&m, &b).unwrap();
        assert_eq!(r.issue_cycles, vec![Some(0), None, None, Some(2)]);
    }
}
