//! Batched + parallel simulation across `(machine, block)` pairs.
//!
//! The bench tables simulate every Figure 7 kernel on every machine —
//! independent jobs that the table bins used to run strictly
//! sequentially. This module fans a job list out over scoped threads with
//! the same chunking pattern as the optimizer's parallel A* candidate
//! evaluation (`optimizer::search::evaluate_candidates`): results come
//! back in job order regardless of worker count, so callers stay
//! deterministic, and `workers <= 1` degenerates to the sequential loop
//! with no thread overhead.

use crate::scheduler::{simulate_block, simulate_loop, SimError, SimResult};
use presage_machine::MachineDesc;
use presage_translate::BlockIr;

/// A sensible worker count for simulation fan-out: the machine's
/// available parallelism, or 1 when it cannot be determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `job` over `jobs` on `workers` scoped threads, preserving order.
fn fan_out<J: Sync, R: Send>(jobs: &[J], workers: usize, job: impl Fn(&J) -> R + Sync) -> Vec<R> {
    let workers = workers.max(1).min(jobs.len());
    if workers <= 1 {
        return jobs.iter().map(&job).collect();
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(jobs.len(), || None);
    let chunk = jobs.len().div_ceil(workers);
    let job = &job;
    std::thread::scope(|scope| {
        for (results, work) in out.chunks_mut(chunk).zip(jobs.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, j) in results.iter_mut().zip(work) {
                    *slot = Some(job(j));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every chunk slot is filled"))
        .collect()
}

/// Simulates each `(machine, block)` pair with the event-driven engine,
/// fanning out over `workers` scoped threads. Results are index-aligned
/// with `jobs`; a non-convergent job yields its own `Err` without
/// disturbing the others.
pub fn simulate_batch(
    jobs: &[(&MachineDesc, &BlockIr)],
    workers: usize,
) -> Vec<Result<SimResult, SimError>> {
    fan_out(jobs, workers, |(machine, block)| {
        simulate_block(machine, block)
    })
}

/// Simulates each `(machine, body, iterations)` loop job — see
/// [`simulate_loop`] — fanning out over `workers` scoped threads.
/// Results are index-aligned with `jobs`.
pub fn simulate_loop_batch(
    jobs: &[(&MachineDesc, &BlockIr, u32)],
    workers: usize,
) -> Vec<Result<(u32, f64), SimError>> {
    fan_out(jobs, workers, |(machine, body, iterations)| {
        simulate_loop(machine, body, *iterations)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::{machines, BasicOp};
    use presage_translate::ValueDef;

    fn chain(n: usize) -> BlockIr {
        let mut b = BlockIr::new();
        let mut v = b.add_value(ValueDef::External("x".into()));
        for _ in 0..n {
            v = b.emit(BasicOp::FAdd, vec![v, v]);
        }
        b
    }

    #[test]
    fn batch_matches_sequential_any_worker_count() {
        let ms = machines::all();
        let blocks: Vec<BlockIr> = (1..=6).map(chain).collect();
        let jobs: Vec<(&MachineDesc, &BlockIr)> = ms
            .iter()
            .flat_map(|m| blocks.iter().map(move |b| (m, b)))
            .collect();
        let sequential = simulate_batch(&jobs, 1);
        for workers in [2, 4, 17] {
            assert_eq!(
                simulate_batch(&jobs, workers),
                sequential,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn loop_batch_matches_direct_calls() {
        let m = machines::power_like();
        let bodies: Vec<BlockIr> = (1..=4).map(chain).collect();
        let jobs: Vec<(&MachineDesc, &BlockIr, u32)> = bodies.iter().map(|b| (&m, b, 8)).collect();
        let batched = simulate_loop_batch(&jobs, 3);
        for (job, got) in jobs.iter().zip(&batched) {
            assert_eq!(*got, simulate_loop(job.0, job.1, job.2));
        }
    }

    #[test]
    fn empty_job_list() {
        assert!(simulate_batch(&[], 8).is_empty());
    }
}
