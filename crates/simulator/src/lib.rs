//! Reference simulator and baselines for the Presage predictor.
//!
//! The paper's Figure 7 compares the cost model against IBM xlf's
//! per-instruction cycle counts. This crate plays that reference role with
//! a cycle-accurate critical-path [list scheduler](scheduler) over the same
//! atomic-operation streams (full dependence tracking, structural hazards,
//! no cost-model approximations), and supplies the [naive](naive)
//! operation-count model the paper warns "may be off by a factor of ten or
//! more" on superscalar machines.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod naive;
pub mod scheduler;

pub use naive::{naive_block_cost, naive_loop_cost, op_count_cost};
pub use scheduler::{simulate_block, simulate_blocks, simulate_loop, SimResult};
