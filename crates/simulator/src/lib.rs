//! Reference simulator and baselines for the Presage predictor.
//!
//! The paper's Figure 7 compares the cost model against IBM xlf's
//! per-instruction cycle counts. This crate plays that reference role with
//! a cycle-accurate critical-path list scheduler over the same
//! atomic-operation streams (full dependence tracking, structural hazards,
//! no cost-model approximations), and supplies the [naive](naive)
//! operation-count model the paper warns "may be off by a factor of ten or
//! more" on superscalar machines.
//!
//! Two scheduling engines compute the same function:
//!
//! - [`scheduler`] — the production **event-driven** engine: a ready
//!   priority queue keyed by critical-path priority, per-unit-instance
//!   next-free times, and a clock that jumps straight to the next
//!   completion/free event (an unpipelined 19-cycle divide costs one
//!   event, not 19 full scans);
//! - [`reference`] — the retained **cycle-driven** oracle (the repo's
//!   established pattern from `core::reference` and
//!   `symbolic::reference`), scanning every pending micro every cycle
//!   against `Vec<bool>` busy bitmaps. `tests/differential.rs` proves the
//!   two agree bit-for-bit on makespan, per-op issue cycles, and per-class
//!   busy counts across all shipped machines.
//!
//! Around the engines sit [`batch`] (scoped-thread fan-out over
//! `(machine, block)` jobs) and [`baseline`] (content-hash-keyed
//! persisted results so the bench tables skip re-simulating unchanged
//! kernels). [`cache`] plays the same oracle role for the memory cost
//! model: a set-associative LRU line cache driven by the real element
//! addresses of a concrete-bounds walk, checked line-for-line against
//! the symbolic distinct-line polynomials.
//!
//! # No issue-width limit (deliberate)
//!
//! The reference model bounds issue only by dependences and functional-unit
//! availability — there is no per-cycle decode/issue-width cap. This
//! mirrors the paper's machine model, where ports on functional units are
//! the structural resource and the [machine descriptions](presage_machine)
//! encode capacity as unit-instance counts; a front-end width would be a
//! second resource axis the paper's tables never parameterize. Machines
//! whose realizable issue rate is narrower than their unit mix must encode
//! that in unit counts (as `risc1` does with its single shared `Alu`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod batch;
pub mod cache;
mod micro;
pub mod naive;
pub mod reference;
pub mod scheduler;

pub use baseline::BaselineStore;
pub use batch::{simulate_batch, simulate_loop_batch};
pub use cache::{layout_lines, simulate_cache, CacheCounts, CacheSimError};
pub use naive::{naive_block_cost, naive_loop_cost, op_count_cost};
pub use scheduler::{simulate_block, simulate_blocks, simulate_loop, SimError, SimResult};
