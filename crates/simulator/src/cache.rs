//! Line-counting cache oracle for the memory cost model.
//!
//! The symbolic model in `presage-core`'s `memcost` module claims that a
//! loop nest touches a particular number of distinct cache lines —
//! polynomial in the loop bounds. This module is the other half of that
//! differential: it *walks* the translated program with every variable
//! bound to a concrete integer, computes the real element address of
//! every load and store, and drives a set-associative LRU line cache.
//! When the cache capacity covers the footprint, the miss count is
//! exactly the number of distinct lines touched, and
//! `tests/memcost_differential.rs` in `presage-core` asserts the two
//! sides agree line-for-line on the Figure 7 kernels.
//!
//! # Layout contract (shared with the cost model)
//!
//! Both sides must place arrays identically or the comparison is
//! meaningless. The contract: column-major storage, 8-byte elements,
//! every array base aligned to a line boundary, the leading (contiguous)
//! dimension padded up to a whole number of lines, arrays laid out in
//! [`ProgramIr::arrays`] declaration order, subscripts 1-based.
//! The padding makes subscript tuples and lines bijective across
//! dimensions: two references can only share a line when they agree on
//! every non-leading subscript.
//!
//! # This is a model oracle, not a trace simulator
//!
//! The walk mirrors the cost model's charging rules rather than any one
//! real execution: loop preheaders and postheaders run once, the control
//! and body blocks run once per iteration, and **both** branches of an
//! `if` are walked (the predictor charges both, weighted by probability;
//! the oracle checks the line counts those charges are built from).
//! Operations without a memory reference — including spill traffic,
//! which carries `mem: None` — never touch the cache, matching the cost
//! model's reference collection exactly.

use presage_frontend::{BinOp, Expr, Intrinsic, UnOp};
use presage_machine::CacheParams;
use presage_translate::{BlockIr, IrNode, LoopIr, ProgramIr};
use std::collections::HashMap;
use std::fmt;

/// Access and miss totals from one cache walk.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheCounts {
    /// Memory operations that reached the cache (loads + stores with a
    /// memory reference).
    pub accesses: u64,
    /// Accesses whose line was not resident.
    pub misses: u64,
}

/// Why a cache walk could not be carried out.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CacheSimError {
    /// An expression referenced a variable with no concrete binding.
    UnboundVariable(String),
    /// A memory reference named an array with no declaration.
    UnknownArray(String),
    /// A reference's subscript count disagrees with the declaration.
    SubscriptRank {
        /// The array whose reference is malformed.
        array: String,
        /// Declared dimension count.
        expected: usize,
        /// Subscripts on the offending reference.
        got: usize,
    },
    /// An array dimension evaluated to zero or a negative extent.
    BadExtent(String),
    /// A loop step evaluated to zero.
    ZeroStep(String),
    /// An expression form the integer evaluator does not support
    /// (e.g. an array-valued subscript).
    UnsupportedExpr(String),
    /// The walk exceeded the iteration safety cap.
    IterationCap,
}

impl fmt::Display for CacheSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheSimError::UnboundVariable(v) => {
                write!(f, "variable `{v}` has no concrete binding")
            }
            CacheSimError::UnknownArray(a) => write!(f, "array `{a}` is not declared"),
            CacheSimError::SubscriptRank {
                array,
                expected,
                got,
            } => write!(
                f,
                "array `{array}` declared with {expected} dimensions but referenced with {got}"
            ),
            CacheSimError::BadExtent(a) => {
                write!(f, "array `{a}` has a non-positive dimension extent")
            }
            CacheSimError::ZeroStep(v) => write!(f, "loop over `{v}` has step 0"),
            CacheSimError::UnsupportedExpr(e) => {
                write!(f, "cannot evaluate expression `{e}` to an integer")
            }
            CacheSimError::IterationCap => {
                write!(f, "walk exceeded the iteration safety cap")
            }
        }
    }
}

impl std::error::Error for CacheSimError {}

/// Total block executions before the walk aborts (guards against
/// enormous concrete bounds rather than real kernels).
const WALK_CAP: u64 = 1 << 28;

/// Walks `ir` with every free variable bound through `bindings`, driving
/// a set-associative LRU cache shaped by `cache`, and returns the access
/// and miss totals.
///
/// Associativity follows [`CacheParams::ways`]: `0` is fully
/// associative, `1` direct-mapped, `n` n-way. Size a fully-associative
/// cache at or above [`layout_lines`] and the misses are exactly the
/// distinct lines the program touches.
///
/// # Errors
///
/// Returns a [`CacheSimError`] when a bound cannot be evaluated, an
/// array reference is malformed, or the walk would not terminate.
pub fn simulate_cache(
    ir: &ProgramIr,
    cache: &CacheParams,
    bindings: &HashMap<String, i64>,
) -> Result<CacheCounts, CacheSimError> {
    let mut env: HashMap<String, i128> = bindings
        .iter()
        .map(|(k, &v)| (k.clone(), i128::from(v)))
        .collect();
    let layout = Layout::build(ir, cache, &env)?;
    let mut sim = LineCache::new(cache);
    let mut budget = WALK_CAP;
    walk_nodes(&ir.root, &mut env, &layout, &mut sim, &mut budget)?;
    Ok(sim.counts)
}

/// Number of cache lines the program's arrays occupy under the layout
/// contract — the footprint a differential cache must cover to make
/// every miss compulsory.
///
/// # Errors
///
/// Returns a [`CacheSimError`] when an array extent cannot be evaluated
/// under `bindings`.
pub fn layout_lines(
    ir: &ProgramIr,
    cache: &CacheParams,
    bindings: &HashMap<String, i64>,
) -> Result<u64, CacheSimError> {
    let env: HashMap<String, i128> = bindings
        .iter()
        .map(|(k, &v)| (k.clone(), i128::from(v)))
        .collect();
    let layout = Layout::build(ir, cache, &env)?;
    Ok(layout.total_lines)
}

// ---------------------------------------------------------------------
// Storage layout.
// ---------------------------------------------------------------------

/// One array's placement: base element address (always a line multiple)
/// and the element stride of each dimension.
struct ArrayLayout {
    base_elem: i128,
    strides: Vec<i128>,
}

struct Layout {
    arrays: HashMap<String, ArrayLayout>,
    elems_per_line: i128,
    total_lines: u64,
}

impl Layout {
    fn build(
        ir: &ProgramIr,
        cache: &CacheParams,
        env: &HashMap<String, i128>,
    ) -> Result<Layout, CacheSimError> {
        let epl = cache.elems_per_line() as i128;
        let mut arrays = HashMap::new();
        let mut cursor: i128 = 0; // next free element address, line-aligned
        for decl in &ir.arrays {
            let mut extents = Vec::with_capacity(decl.dims.len());
            for d in &decl.dims {
                let e = eval_int(d, env)?;
                if e <= 0 {
                    return Err(CacheSimError::BadExtent(decl.name.clone()));
                }
                extents.push(e);
            }
            // Column-major with the leading dimension padded up to a
            // whole number of lines; outer dimensions use the declared
            // extents.
            let mut strides = Vec::with_capacity(extents.len());
            let mut stride: i128 = 1;
            for (i, &e) in extents.iter().enumerate() {
                strides.push(stride);
                stride *= if i == 0 { round_up(e, epl) } else { e };
            }
            arrays.insert(
                decl.name.clone(),
                ArrayLayout {
                    base_elem: cursor,
                    strides,
                },
            );
            // `stride` is now the padded element count: a line multiple
            // because the leading dimension was rounded up.
            cursor += round_up(stride, epl);
        }
        Ok(Layout {
            arrays,
            elems_per_line: epl,
            total_lines: (cursor / epl) as u64,
        })
    }

    /// The line index a reference touches.
    fn line_of(
        &self,
        array: &str,
        subscripts: &[Expr],
        env: &HashMap<String, i128>,
    ) -> Result<i128, CacheSimError> {
        let a = self
            .arrays
            .get(array)
            .ok_or_else(|| CacheSimError::UnknownArray(array.to_string()))?;
        if subscripts.len() != a.strides.len() {
            return Err(CacheSimError::SubscriptRank {
                array: array.to_string(),
                expected: a.strides.len(),
                got: subscripts.len(),
            });
        }
        let mut elem = a.base_elem;
        for (sub, stride) in subscripts.iter().zip(&a.strides) {
            elem += (eval_int(sub, env)? - 1) * stride;
        }
        Ok(elem.div_euclid(self.elems_per_line))
    }
}

fn round_up(v: i128, to: i128) -> i128 {
    v.div_euclid(to) * to + if v.rem_euclid(to) == 0 { 0 } else { to }
}

// ---------------------------------------------------------------------
// The cache proper.
// ---------------------------------------------------------------------

/// Set-associative LRU over line indices. Each set is kept in recency
/// order (most recently used last); resident sets never exceed the
/// footprint, so the linear scans stay cheap for oracle-sized runs.
struct LineCache {
    sets: Vec<Vec<i128>>,
    assoc: usize,
    counts: CacheCounts,
}

impl LineCache {
    fn new(params: &CacheParams) -> LineCache {
        let total = params.total_lines().max(1) as usize;
        let (num_sets, assoc) = match params.ways {
            0 => (1, total),
            w => {
                let w = (w as usize).min(total);
                ((total / w).max(1), w)
            }
        };
        LineCache {
            sets: vec![Vec::new(); num_sets],
            assoc,
            counts: CacheCounts::default(),
        }
    }

    fn access(&mut self, line: i128) {
        self.counts.accesses += 1;
        let idx = line.rem_euclid(self.sets.len() as i128) as usize;
        let set = &mut self.sets[idx];
        match set.iter().position(|&l| l == line) {
            Some(pos) => {
                set.remove(pos);
                set.push(line);
            }
            None => {
                self.counts.misses += 1;
                if set.len() >= self.assoc {
                    set.remove(0);
                }
                set.push(line);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The walk.
// ---------------------------------------------------------------------

fn touch_block(
    block: &BlockIr,
    env: &HashMap<String, i128>,
    layout: &Layout,
    sim: &mut LineCache,
    budget: &mut u64,
) -> Result<(), CacheSimError> {
    if *budget == 0 {
        return Err(CacheSimError::IterationCap);
    }
    *budget -= 1;
    for (_, mref) in block.mem_refs() {
        let line = layout.line_of(&mref.array, &mref.subscripts, env)?;
        sim.access(line);
    }
    Ok(())
}

fn walk_nodes(
    nodes: &[IrNode],
    env: &mut HashMap<String, i128>,
    layout: &Layout,
    sim: &mut LineCache,
    budget: &mut u64,
) -> Result<(), CacheSimError> {
    for node in nodes {
        match node {
            IrNode::Block(b) => touch_block(b, env, layout, sim, budget)?,
            IrNode::Loop(l) => walk_loop(l, env, layout, sim, budget)?,
            IrNode::If(i) => {
                touch_block(&i.cond_block, env, layout, sim, budget)?;
                walk_nodes(&i.then_nodes, env, layout, sim, budget)?;
                walk_nodes(&i.else_nodes, env, layout, sim, budget)?;
            }
        }
    }
    Ok(())
}

fn walk_loop(
    l: &LoopIr,
    env: &mut HashMap<String, i128>,
    layout: &Layout,
    sim: &mut LineCache,
    budget: &mut u64,
) -> Result<(), CacheSimError> {
    touch_block(&l.preheader, env, layout, sim, budget)?;
    // Fortran do-loop semantics: bounds and step are evaluated once.
    let lb = eval_int(&l.lb, env)?;
    let ub = eval_int(&l.ub, env)?;
    let step = match &l.step {
        Some(s) => eval_int(s, env)?,
        None => 1,
    };
    if step == 0 {
        return Err(CacheSimError::ZeroStep(l.var.clone()));
    }
    let shadowed = env.get(&l.var).copied();
    let mut v = lb;
    while (step > 0 && v <= ub) || (step < 0 && v >= ub) {
        env.insert(l.var.clone(), v);
        touch_block(&l.control, env, layout, sim, budget)?;
        walk_nodes(&l.body, env, layout, sim, budget)?;
        v += step;
    }
    match shadowed {
        Some(prev) => env.insert(l.var.clone(), prev),
        None => env.remove(&l.var),
    };
    // The postheader (reduction store-back) runs after the loop exits,
    // with the control variable out of scope for the cost model.
    touch_block(&l.postheader, env, layout, sim, budget)
}

/// Evaluates an integer source expression under concrete bindings.
/// Division truncates toward zero (Fortran integer division), matching
/// the cost model's evaluator.
fn eval_int(e: &Expr, env: &HashMap<String, i128>) -> Result<i128, CacheSimError> {
    match e {
        Expr::IntLit(n) => Ok(i128::from(*n)),
        Expr::Var(name) => env
            .get(name)
            .copied()
            .ok_or_else(|| CacheSimError::UnboundVariable(name.clone())),
        Expr::Unary {
            op: UnOp::Neg,
            operand,
        } => Ok(-eval_int(operand, env)?),
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_int(lhs, env)?;
            let r = eval_int(rhs, env)?;
            match op {
                BinOp::Add => Ok(l + r),
                BinOp::Sub => Ok(l - r),
                BinOp::Mul => l
                    .checked_mul(r)
                    .ok_or_else(|| CacheSimError::UnsupportedExpr(e.to_string())),
                BinOp::Div if r != 0 => Ok(l / r),
                _ => Err(CacheSimError::UnsupportedExpr(e.to_string())),
            }
        }
        Expr::Intrinsic { func, args } => {
            let vals: Result<Vec<i128>, CacheSimError> =
                args.iter().map(|a| eval_int(a, env)).collect();
            let vals = vals?;
            match (func, vals.into_iter()) {
                (Intrinsic::Min, it) => it
                    .min()
                    .ok_or_else(|| CacheSimError::UnsupportedExpr(e.to_string())),
                (Intrinsic::Max, it) => it
                    .max()
                    .ok_or_else(|| CacheSimError::UnsupportedExpr(e.to_string())),
                _ => Err(CacheSimError::UnsupportedExpr(e.to_string())),
            }
        }
        other => Err(CacheSimError::UnsupportedExpr(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_frontend::{parse, sema};
    use presage_machine::machines;
    use presage_translate::translate;

    fn ir_of(src: &str) -> ProgramIr {
        let prog = parse(src).expect("parse");
        let symbols = sema::analyze(&prog.units[0]).expect("sema");
        translate(&prog.units[0], &symbols, &machines::power_like()).expect("translate")
    }

    fn cache64() -> CacheParams {
        CacheParams {
            line_bytes: 64,
            size_bytes: 1 << 22,
            miss_penalty: 10,
            ways: 0,
            ..CacheParams::default()
        }
    }

    fn bind(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    const COPY: &str = "subroutine copy(a, b, n)
        real a(n), b(n)
        integer i, n
        do i = 1, n
          a(i) = b(i)
        end do
      end";

    #[test]
    fn unit_stride_copy_misses_once_per_line() {
        let ir = ir_of(COPY);
        let c = simulate_cache(&ir, &cache64(), &bind(&[("n", 512)])).unwrap();
        // 512 loads + 512 stores; 64 lines per array, each missed once.
        assert_eq!(c.accesses, 1024);
        assert_eq!(c.misses, 128);
    }

    #[test]
    fn direct_mapped_same_set_arrays_thrash() {
        let ir = ir_of(COPY);
        // Tiny direct-mapped cache: a(i) and b(i) offsets within the
        // cache collide every iteration, so every access misses.
        let params = CacheParams {
            line_bytes: 64,
            size_bytes: 4096,
            miss_penalty: 10,
            ways: 1,
            ..CacheParams::default()
        };
        let c = simulate_cache(&ir, &params, &bind(&[("n", 512)])).unwrap();
        assert_eq!(c.misses, 1024, "every access conflict-misses");
        // Fully associative at the same size holds both streams.
        let fa = CacheParams { ways: 0, ..params };
        let c = simulate_cache(&ir, &fa, &bind(&[("n", 512)])).unwrap();
        assert_eq!(c.misses, 128);
    }

    #[test]
    fn padded_leading_dimension_separates_columns() {
        // A 6-wide leading dimension pads to 8 elements (one 64-byte
        // line), so each of the 6 columns starts its own line.
        let ir = ir_of(
            "subroutine fill(a, n)
               real a(6, n)
               integer i, j, n
               do j = 1, n
                 do i = 1, 6
                   a(i, j) = 0.0
                 end do
               end do
             end",
        );
        let c = simulate_cache(&ir, &cache64(), &bind(&[("n", 10)])).unwrap();
        assert_eq!(c.misses, 10, "one padded line per column");
        assert_eq!(
            layout_lines(&ir, &cache64(), &bind(&[("n", 10)])).unwrap(),
            10
        );
    }

    #[test]
    fn reuse_never_remisses_under_covering_capacity() {
        // b(j) is swept n times; with capacity over the footprint only
        // the first sweep misses.
        let ir = ir_of(
            "subroutine outer(a, b, n)
               real a(n), b(n)
               integer i, j, n
               do i = 1, n
                 do j = 1, n
                   a(i) = a(i) + b(j)
                 end do
               end do
             end",
        );
        let c = simulate_cache(&ir, &cache64(), &bind(&[("n", 64)])).unwrap();
        assert_eq!(c.misses, 16, "8 lines of a + 8 lines of b");
    }

    #[test]
    fn zero_trip_loop_still_runs_headers() {
        let ir = ir_of(
            "subroutine red(s, a, n, m)
               real s, a(n)
               integer i, n, m
               s = 0.0
               do i = 1, m
                 s = s + a(i)
               end do
             end",
        );
        // m = 0: the body never runs; header blocks hold no array refs
        // here, so the walk completes with zero accesses.
        let c = simulate_cache(&ir, &cache64(), &bind(&[("n", 8), ("m", 0)])).unwrap();
        assert_eq!(c.accesses, 0);
    }

    #[test]
    fn unbound_variable_is_reported() {
        let ir = ir_of(COPY);
        let err = simulate_cache(&ir, &cache64(), &bind(&[])).unwrap_err();
        assert_eq!(err, CacheSimError::UnboundVariable("n".into()));
    }
}
