//! Persisted simulator baselines keyed by block content.
//!
//! The bench tables (`fig7_table`, `overlap_table`, `efficiency_table`)
//! re-simulate the same fixed kernel suite on every run even though the
//! kernels and machine descriptions rarely change between runs. This
//! store persists `(machine, block) -> cycles` results to
//! `BENCH_sim_baselines.json` so a warm run skips simulation entirely for
//! unchanged pairs.
//!
//! Keys mirror the `TranslationCache` derivation: a [`fold128`] content
//! hash over the machine name, a mode tag (`"block"` or `"loopN"`), and
//! the block's canonical content encoding
//! ([`BlockIr::encode_content`]) — so:
//!
//! - editing a kernel or a machine description changes the key and the
//!   stale entry is simply never looked up again;
//! - there is no invalidation story to get wrong: keys are content
//!   hashes and values are the deterministic simulator outputs.
//!
//! The store deliberately persists only the scalar measurements the
//! tables consume (block makespan; loop first/total makespans), not full
//! per-op issue traces — anything richer re-simulates.

use crate::scheduler::{SimError, SimResult};
use presage_frontend::fold::{encode_str, fold128};
use presage_machine::json::Json;
use presage_machine::MachineDesc;
use presage_translate::BlockIr;
use std::collections::HashMap;
use std::path::Path;

/// Schema tag written to (and required from) the JSON artifact.
pub const BASELINE_SCHEMA: &str = "presage-sim-baselines-v1";

/// Seed for baseline keys — distinct from `AST_SEED` so simulator
/// baselines and translation-cache keys live in unrelated hash families.
const SIM_SEED: u64 = 0x5349_4d42_4153_u64; // "SIMBAS"

/// One persisted measurement.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Entry {
    /// Straight-line block makespan.
    Block { makespan: u32 },
    /// Overlapped-loop measurement: first-iteration and `iterations`-copy
    /// total makespans (steady-state cycles/iteration is derived).
    Loop {
        first: u32,
        total: u32,
        iterations: u32,
    },
}

/// A load/record/save store of simulator baselines with hit/miss
/// accounting.
#[derive(Debug, Default)]
pub struct BaselineStore {
    map: HashMap<u128, Entry>,
    hits: u64,
    misses: u64,
}

fn key(machine: &MachineDesc, mode: &str, block: &BlockIr) -> u128 {
    let mut buf = Vec::with_capacity(256);
    encode_str(&mut buf, machine.name());
    encode_str(&mut buf, mode);
    block.encode_content(&mut buf);
    fold128(&buf, SIM_SEED)
}

impl BaselineStore {
    /// An empty store.
    pub fn new() -> BaselineStore {
        BaselineStore::default()
    }

    /// Loads the store from `path`. A missing file, a parse failure, or a
    /// schema mismatch all yield an empty store — baselines are a cache,
    /// never a correctness input.
    pub fn load(path: &Path) -> BaselineStore {
        let mut store = BaselineStore::new();
        let Ok(text) = std::fs::read_to_string(path) else {
            return store;
        };
        let Ok(doc) = Json::parse(&text) else {
            return store;
        };
        if doc.get("schema").and_then(Json::as_str) != Some(BASELINE_SCHEMA) {
            return store;
        }
        let Some(entries) = doc.get("entries").and_then(Json::as_arr) else {
            return store;
        };
        for e in entries {
            let Some(k) = e.get("key").and_then(Json::as_str) else {
                continue;
            };
            let Ok(k) = u128::from_str_radix(k, 16) else {
                continue;
            };
            let entry = match e.get("mode").and_then(Json::as_str) {
                Some("block") => match e.get("makespan").and_then(Json::as_u64) {
                    Some(ms) => Entry::Block {
                        makespan: ms as u32,
                    },
                    None => continue,
                },
                Some("loop") => {
                    let (Some(first), Some(total), Some(iters)) = (
                        e.get("first").and_then(Json::as_u64),
                        e.get("total").and_then(Json::as_u64),
                        e.get("iterations").and_then(Json::as_u64),
                    ) else {
                        continue;
                    };
                    Entry::Loop {
                        first: first as u32,
                        total: total as u32,
                        iterations: iters as u32,
                    }
                }
                _ => continue,
            };
            store.map.insert(k, entry);
        }
        store
    }

    /// Looks up a straight-line block makespan.
    pub fn get_block(&mut self, machine: &MachineDesc, block: &BlockIr) -> Option<u32> {
        match self.map.get(&key(machine, "block", block)) {
            Some(Entry::Block { makespan }) => {
                self.hits += 1;
                Some(*makespan)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a straight-line block makespan.
    pub fn record_block(&mut self, machine: &MachineDesc, block: &BlockIr, makespan: u32) {
        self.map
            .insert(key(machine, "block", block), Entry::Block { makespan });
    }

    /// Looks up an overlapped-loop measurement, returning
    /// `(first_iteration_makespan, steady_cycles_per_iteration)` exactly
    /// as [`crate::simulate_loop`] would.
    pub fn get_loop(
        &mut self,
        machine: &MachineDesc,
        body: &BlockIr,
        iterations: u32,
    ) -> Option<(u32, f64)> {
        let mode = format!("loop{iterations}");
        match self.map.get(&key(machine, &mode, body)) {
            Some(Entry::Loop {
                first,
                total,
                iterations: it,
            }) if *it == iterations => {
                self.hits += 1;
                let steady = (*total - *first) as f64 / (iterations - 1) as f64;
                Some((*first, steady))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records an overlapped-loop measurement from its raw first/total
    /// makespans (the exact integers, so the derived steady-state value
    /// round-trips bit-identically).
    pub fn record_loop(
        &mut self,
        machine: &MachineDesc,
        body: &BlockIr,
        iterations: u32,
        first: u32,
        total: u32,
    ) {
        let mode = format!("loop{iterations}");
        self.map.insert(
            key(machine, &mode, body),
            Entry::Loop {
                first,
                total,
                iterations,
            },
        );
    }

    /// Simulates `block` on `machine`, serving the makespan from the
    /// store when present and recording it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the underlying simulation on a miss.
    pub fn block_makespan(
        &mut self,
        machine: &MachineDesc,
        block: &BlockIr,
        sim: impl FnOnce(&MachineDesc, &BlockIr) -> Result<SimResult, SimError>,
    ) -> Result<u32, SimError> {
        if let Some(ms) = self.get_block(machine, block) {
            return Ok(ms);
        }
        let ms = sim(machine, block)?.makespan;
        self.record_block(machine, block, ms);
        Ok(ms)
    }

    /// Measures `iterations` overlapped copies of `body` on `machine`
    /// exactly as [`crate::simulate_loop`] does, serving the result from
    /// the store when present and recording the raw first/total makespans
    /// on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the underlying simulation on a miss.
    pub fn loop_cycles(
        &mut self,
        machine: &MachineDesc,
        body: &BlockIr,
        iterations: u32,
    ) -> Result<(u32, f64), SimError> {
        if let Some(r) = self.get_loop(machine, body, iterations) {
            return Ok(r);
        }
        let first = crate::scheduler::simulate_block(machine, body)?.makespan;
        let copies: Vec<&BlockIr> = std::iter::repeat_n(body, iterations as usize).collect();
        let total = crate::scheduler::simulate_blocks(machine, copies.iter().copied())?.makespan;
        self.record_loop(machine, body, iterations, first, total);
        let steady = (total - first) as f64 / (iterations - 1) as f64;
        Ok((first, steady))
    }

    /// Number of persisted entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are persisted.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` lookup counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Serializes the store (sorted by key for byte-stable output).
    pub fn to_json(&self) -> Json {
        let mut keys: Vec<&u128> = self.map.keys().collect();
        keys.sort_unstable();
        let entries: Vec<Json> = keys
            .into_iter()
            .map(|k| {
                let mut obj = vec![("key".to_string(), Json::Str(format!("{k:032x}")))];
                match &self.map[k] {
                    Entry::Block { makespan } => {
                        obj.push(("mode".to_string(), Json::Str("block".into())));
                        obj.push(("makespan".to_string(), Json::Num(f64::from(*makespan))));
                    }
                    Entry::Loop {
                        first,
                        total,
                        iterations,
                    } => {
                        obj.push(("mode".to_string(), Json::Str("loop".into())));
                        obj.push(("first".to_string(), Json::Num(f64::from(*first))));
                        obj.push(("total".to_string(), Json::Num(f64::from(*total))));
                        obj.push(("iterations".to_string(), Json::Num(f64::from(*iterations))));
                    }
                }
                Json::Obj(obj)
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(BASELINE_SCHEMA.into())),
            ("entries".to_string(), Json::Arr(entries)),
        ])
    }

    /// Writes the store to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::simulate_block;
    use presage_machine::{machines, BasicOp};
    use presage_translate::ValueDef;

    fn chain(n: usize) -> BlockIr {
        let mut b = BlockIr::new();
        let mut v = b.add_value(ValueDef::External("x".into()));
        for _ in 0..n {
            v = b.emit(BasicOp::FAdd, vec![v, v]);
        }
        b
    }

    #[test]
    fn round_trips_through_json() {
        let m = machines::power_like();
        let w = machines::wide8();
        let b3 = chain(3);
        let b5 = chain(5);
        let mut store = BaselineStore::new();
        store.record_block(&m, &b3, 6);
        store.record_block(&w, &b3, 6);
        store.record_loop(&m, &b5, 8, 10, 80);
        let text = store.to_json().to_string_pretty();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(BASELINE_SCHEMA)
        );

        let dir = std::env::temp_dir().join("presage-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        store.save(&path).unwrap();
        let mut loaded = BaselineStore::load(&path);
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded.get_block(&m, &b3), Some(6));
        assert_eq!(loaded.get_block(&w, &b3), Some(6));
        assert_eq!(loaded.get_loop(&m, &b5, 8), Some((10, 10.0)));
        assert_eq!(loaded.stats(), (3, 0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn keys_distinguish_machine_mode_and_content() {
        let m = machines::power_like();
        let w = machines::wide8();
        let b = chain(4);
        let mut store = BaselineStore::new();
        store.record_block(&m, &b, 8);
        // Different machine, different mode, different content: all miss.
        assert_eq!(store.get_block(&w, &b), None);
        assert_eq!(store.get_loop(&m, &b, 8), None);
        assert_eq!(store.get_block(&m, &chain(5)), None);
        assert_eq!(store.get_block(&m, &b), Some(8));
        assert_eq!(store.stats(), (1, 3));
    }

    #[test]
    fn loop_iteration_count_is_part_of_the_key() {
        let m = machines::power_like();
        let b = chain(2);
        let mut store = BaselineStore::new();
        store.record_loop(&m, &b, 8, 4, 32);
        assert_eq!(store.get_loop(&m, &b, 16), None);
        assert_eq!(store.get_loop(&m, &b, 8), Some((4, 4.0)));
    }

    #[test]
    fn block_makespan_records_on_miss_and_serves_on_hit() {
        let m = machines::power_like();
        let b = chain(5);
        let mut store = BaselineStore::new();
        let cold = store.block_makespan(&m, &b, simulate_block).unwrap();
        assert_eq!(cold, simulate_block(&m, &b).unwrap().makespan);
        // Warm hit must not re-simulate: feed a sim that would panic.
        let warm = store
            .block_makespan(&m, &b, |_, _| panic!("warm lookup must not simulate"))
            .unwrap();
        assert_eq!(warm, cold);
        assert_eq!(store.stats(), (1, 1));
    }

    #[test]
    fn loop_cycles_matches_simulate_loop_and_round_trips() {
        let m = machines::power_like();
        let b = chain(4);
        let mut store = BaselineStore::new();
        let cold = store.loop_cycles(&m, &b, 8).unwrap();
        assert_eq!(cold, crate::scheduler::simulate_loop(&m, &b, 8).unwrap());
        let warm = store.loop_cycles(&m, &b, 8).unwrap();
        assert_eq!(warm, cold, "served measurement is bit-identical");
        assert_eq!(store.stats(), (1, 1));
    }

    #[test]
    fn missing_or_corrupt_file_loads_empty() {
        let dir = std::env::temp_dir().join("presage-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(BaselineStore::load(&dir.join("no-such-file.json")).is_empty());
        let bad = dir.join("corrupt.json");
        std::fs::write(&bad, "{not json").unwrap();
        assert!(BaselineStore::load(&bad).is_empty());
        let wrong = dir.join("wrong-schema.json");
        std::fs::write(&wrong, "{\"schema\": \"other\", \"entries\": []}").unwrap();
        assert!(BaselineStore::load(&wrong).is_empty());
        std::fs::remove_file(&bad).unwrap();
        std::fs::remove_file(&wrong).unwrap();
    }
}
