//! Shared micro-operation expansion for both scheduling engines.
//!
//! The event-driven scheduler ([`crate::scheduler`]) and the retained
//! cycle-driven reference ([`crate::reference`]) consume the same stream
//! of micro-operations; this module is the single place that turns
//! [`BlockIr`] operations into that stream, so an expansion bug cannot
//! hide as an engine-vs-engine difference in the differential tests.
//!
//! Expansion rules:
//!
//! - every atomic operation with a non-empty cost vector becomes one
//!   micro-operation; atomics with empty costs (and basic ops that expand
//!   to no atomics at all, e.g. `Nop`) produce nothing;
//! - micros of one operation are chained in expansion order (micro *k+1*
//!   depends on micro *k*);
//! - the first micro of an operation depends on the *finish set* of every
//!   producer operation. An operation that produced no micros contributes
//!   its own finish set transitively, so a dependence chain through a
//!   zero-cost operation is preserved instead of silently dropped (the
//!   pre-rewrite scheduler filtered such producers out, letting dependents
//!   issue before their transitive producers).
//!
//! The expanded stream is stored flat (CSR offsets into shared cost and
//! dependence arrays, parallel scalar columns) rather than as a vector of
//! per-micro structs: both engines walk it linearly in their hot loops,
//! and the N-copy streams `simulate_loop` builds replicate a block by
//! appending slices with shifted indices — no per-copy re-walk of the
//! machine tables and no per-micro allocations.

use crate::scheduler::{SimError, SimResult};
use presage_machine::{MachineDesc, UnitClass};
use presage_translate::BlockIr;
use std::collections::HashMap;

/// One schedulable micro-operation, used only during per-block expansion
/// before flattening into a [`MicroStream`].
struct Micro {
    /// `(class, noncoverable, coverable)` per functional-unit component.
    costs: Vec<(UnitClass, u32, u32)>,
    /// Result latency (max `noncoverable + coverable` over components).
    latency: u32,
    /// Indices of micros that must finish before this one may issue
    /// (sorted, deduplicated, always pointing at earlier micros).
    deps: Vec<usize>,
    /// Critical-path priority (longest latency chain to any sink).
    priority: u32,
    /// Which source op this belongs to. The op's *first* micro records
    /// the op's issue cycle; later micros of the same op never overwrite
    /// it.
    source_op: usize,
}

/// A fully expanded multi-block operation stream in flat CSR form, ready
/// for scheduling. All columns are index-aligned by micro.
pub(crate) struct MicroStream {
    /// Number of micros in the stream.
    pub n: usize,
    /// Total number of source operations across all blocks (the length of
    /// [`SimResult::issue_cycles`]).
    pub n_ops: usize,
    /// CSR offsets into `costs` (length `n + 1`).
    pub costs_off: Vec<u32>,
    /// Flattened `(class, noncoverable, coverable)` components.
    pub costs: Vec<(UnitClass, u32, u32)>,
    /// CSR offsets into `deps` (length `n + 1`).
    pub deps_off: Vec<u32>,
    /// Flattened dependence edges (always pointing at earlier micros).
    pub deps: Vec<u32>,
    /// Result latency per micro.
    pub latency: Vec<u32>,
    /// Critical-path priority per micro.
    pub priority: Vec<u32>,
    /// Source operation per micro.
    pub source_op: Vec<u32>,
}

impl MicroStream {
    pub(crate) fn costs_of(&self, i: usize) -> &[(UnitClass, u32, u32)] {
        &self.costs[self.costs_off[i] as usize..self.costs_off[i + 1] as usize]
    }

    pub(crate) fn deps_of(&self, i: usize) -> &[u32] {
        &self.deps[self.deps_off[i] as usize..self.deps_off[i + 1] as usize]
    }
}

/// Expands one block into `micros`, threading dependences through
/// operations whose entire expansion has empty costs.
fn expand_block(machine: &MachineDesc, block: &BlockIr, micros: &mut Vec<Micro>) {
    // finish_of_op[i]: the micro indices a dependent of op i must wait on.
    // One element for ops with micros; the (transitively resolved) union
    // of the producers' finish sets for micro-less ops.
    let mut finish_of_op: Vec<Vec<usize>> = Vec::with_capacity(block.ops.len());
    for (i, op) in block.ops.iter().enumerate() {
        let mut dep_micros: Vec<usize> = Vec::new();
        for d in block.deps_of(op) {
            let d = d.0 as usize;
            // Dependences must point at earlier ops; a forward edge cannot
            // be scheduled and is dropped (translated blocks never contain
            // one — see the crate docs).
            debug_assert!(d < i, "forward dependence edge {d} -> {i}");
            if let Some(fs) = finish_of_op.get(d) {
                dep_micros.extend_from_slice(fs);
            }
        }
        dep_micros.sort_unstable();
        dep_micros.dedup();
        let mut last: Option<usize> = None;
        for atomic_id in machine.expand(op.basic) {
            let atomic = machine.atomic(*atomic_id);
            if atomic.costs.is_empty() {
                continue;
            }
            let deps = match last {
                None => dep_micros.clone(),
                Some(l) => vec![l],
            };
            micros.push(Micro {
                costs: atomic
                    .costs
                    .iter()
                    .map(|c| (c.class, c.noncoverable, c.coverable))
                    .collect(),
                latency: atomic.latency(),
                deps,
                priority: 0,
                source_op: i,
            });
            last = Some(micros.len() - 1);
        }
        finish_of_op.push(match last {
            Some(l) => vec![l],
            None => dep_micros,
        });
    }
}

/// One expanded block in flat form, ready to be replicated into a stream.
struct FlatBlock {
    n_ops: usize,
    n: usize,
    costs_off: Vec<u32>,
    costs: Vec<(UnitClass, u32, u32)>,
    deps_off: Vec<u32>,
    deps: Vec<u32>,
    latency: Vec<u32>,
    priority: Vec<u32>,
    source_op: Vec<u32>,
}

fn flatten_block(machine: &MachineDesc, block: &BlockIr) -> FlatBlock {
    let mut micros: Vec<Micro> = Vec::new();
    expand_block(machine, block, &mut micros);

    // Critical-path priorities: reverse topological accumulation (deps
    // always point at earlier micros, so reverse index order suffices).
    let mut priority = vec![0u32; micros.len()];
    for i in (0..micros.len()).rev() {
        let p = priority[i] + micros[i].latency;
        for &d in &micros[i].deps {
            if priority[d] < p {
                priority[d] = p;
            }
        }
    }
    for (m, p) in micros.iter_mut().zip(&priority) {
        m.priority = *p;
    }

    let mut flat = FlatBlock {
        n_ops: block.ops.len(),
        n: micros.len(),
        costs_off: Vec::with_capacity(micros.len() + 1),
        costs: Vec::new(),
        deps_off: Vec::with_capacity(micros.len() + 1),
        deps: Vec::new(),
        latency: Vec::with_capacity(micros.len()),
        priority: Vec::with_capacity(micros.len()),
        source_op: Vec::with_capacity(micros.len()),
    };
    flat.costs_off.push(0);
    flat.deps_off.push(0);
    for m in &micros {
        flat.costs.extend_from_slice(&m.costs);
        flat.costs_off.push(flat.costs.len() as u32);
        flat.deps.extend(m.deps.iter().map(|&d| d as u32));
        flat.deps_off.push(flat.deps.len() as u32);
        flat.latency.push(m.latency);
        flat.priority.push(m.priority);
        flat.source_op.push(m.source_op as u32);
    }
    flat
}

/// Expands a sequence of blocks as one stream with **independent**
/// inter-block dependences (each block's deps are internal) and computes
/// critical-path priorities.
///
/// Because inter-block dependences never exist, a block's expansion —
/// including its priorities — is position-independent: repeated blocks
/// (the N-copy streams `simulate_loop` builds) are expanded once and
/// replicated with shifted indices instead of re-walked per copy.
pub(crate) fn expand_blocks<'a>(
    machine: &MachineDesc,
    blocks: impl IntoIterator<Item = &'a BlockIr>,
) -> MicroStream {
    // Tiny pointer-keyed expansion cache; streams rarely contain more
    // than a handful of distinct blocks.
    let mut cache: Vec<(*const BlockIr, FlatBlock)> = Vec::new();
    let mut out = MicroStream {
        n: 0,
        n_ops: 0,
        costs_off: vec![0],
        costs: Vec::new(),
        deps_off: vec![0],
        deps: Vec::new(),
        latency: Vec::new(),
        priority: Vec::new(),
        source_op: Vec::new(),
    };
    for block in blocks {
        let ptr = block as *const BlockIr;
        if !cache.iter().any(|(p, _)| *p == ptr) {
            cache.push((ptr, flatten_block(machine, block)));
        }
        let flat = &cache
            .iter()
            .find(|(p, _)| *p == ptr)
            .expect("just inserted")
            .1;
        let micro_base = out.n as u32;
        let cost_base = out.costs.len() as u32;
        let dep_base = out.deps.len() as u32;
        let op_base = out.n_ops as u32;
        out.costs.extend_from_slice(&flat.costs);
        out.costs_off
            .extend(flat.costs_off[1..].iter().map(|o| o + cost_base));
        out.deps.extend(flat.deps.iter().map(|d| d + micro_base));
        out.deps_off
            .extend(flat.deps_off[1..].iter().map(|o| o + dep_base));
        out.latency.extend_from_slice(&flat.latency);
        out.priority.extend_from_slice(&flat.priority);
        out.source_op
            .extend(flat.source_op.iter().map(|s| s + op_base));
        out.n += flat.n;
        out.n_ops += flat.n_ops;
    }
    out
}

/// Accumulates per-class busy cycles into the map a [`SimResult`] carries.
pub(crate) fn busy_map(per_class: &[(UnitClass, u32)]) -> HashMap<UnitClass, u32> {
    let mut out = HashMap::new();
    for &(class, busy) in per_class {
        if busy > 0 {
            *out.entry(class).or_insert(0) += busy;
        }
    }
    out
}

/// Shared steady-state loop measurement over any block simulator.
pub(crate) fn loop_measurement(
    body: &BlockIr,
    iterations: u32,
    mut sim: impl FnMut(&[&BlockIr]) -> Result<SimResult, SimError>,
) -> Result<(u32, f64), SimError> {
    assert!(iterations >= 2, "need at least two iterations");
    let first = sim(&[body])?.makespan;
    let copies: Vec<&BlockIr> = std::iter::repeat_n(body, iterations as usize).collect();
    let total = sim(&copies)?.makespan;
    let steady = (total - first) as f64 / (iterations - 1) as f64;
    Ok((first, steady))
}
