//! Event-driven cycle-accurate list scheduler.
//!
//! Semantically identical to the retained cycle-driven reference
//! ([`crate::reference`], the repo's oracle for this engine — see the
//! differential tests), but time never advances one cycle at a time.
//! Instead:
//!
//! - micros whose dependences have all finished sit in a **ready queue**
//!   ordered by critical-path priority (ties broken by stream position,
//!   exactly the reference's static scan order);
//! - every functional-unit instance is a single **next-free time** rather
//!   than a `Vec<bool>` bitmap — reservations always begin at the current
//!   event time, so each instance's busy intervals collapse to their
//!   maximum end point;
//! - the clock jumps straight to the next **event**: a dependence finish
//!   or a unit-instance release. An unpipelined 19-cycle divide costs one
//!   event, not 19 full rescans of the pending stream.
//!
//! Equivalence with the per-cycle scan rests on two facts. First, a pass
//! at event time `t` replays the reference's cycle-`t` scan verbatim
//! (same order, same readiness test, same structural-hazard test), so a
//! pass at a time where the reference issues nothing is a no-op. Second,
//! between events nothing a micro is waiting for can change: readiness
//! flips only at a dependence finish, and unit availability — monotone in
//! time, because every reserved interval starts in the past — flips only
//! at a reservation end; both are always in the event queue.

use crate::micro::{busy_map, expand_blocks, loop_measurement};
use presage_machine::{MachineDesc, UnitClass};
use presage_translate::BlockIr;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// Result of simulating an operation stream.
#[derive(Clone, PartialEq, Debug)]
pub struct SimResult {
    /// Cycle at which the last result becomes available.
    pub makespan: u32,
    /// Issue cycle of each operation (index-aligned with the input ops),
    /// taken from the operation's *first* micro. `None` for operations
    /// whose entire expansion has empty costs — they occupy no unit and
    /// never issue, which is distinct from a real cycle-0 issue.
    pub issue_cycles: Vec<Option<u32>>,
    /// Busy cycles per unit class.
    pub unit_busy: HashMap<UnitClass, u32>,
}

/// A simulation that could not run to completion.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The scheduler could not retire every micro-operation: either the
    /// cycle budget ran out (cycle-driven reference) or the event queue
    /// drained with work outstanding (event-driven engine, e.g. a
    /// malformed dependence cycle). Carries the number of micros left.
    NonConvergence {
        /// Micro-operations still unissued when the engine gave up.
        remaining: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NonConvergence { remaining } => {
                write!(
                    f,
                    "simulator failed to converge ({remaining} micro-ops unissued)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Ready-queue key: critical-path priority descending, then stream
/// position ascending — the reference's static scan order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ReadyKey {
    priority: u32,
    index: std::cmp::Reverse<usize>,
}

impl ReadyKey {
    fn new(priority: u32, i: usize) -> ReadyKey {
        ReadyKey {
            priority,
            index: std::cmp::Reverse(i),
        }
    }
}

/// Per-class pools of unit-instance next-free times.
struct Units {
    /// `(class, next_free per instance, busy cycles accumulated)`.
    pools: Vec<(UnitClass, Vec<u32>, u32)>,
}

impl Units {
    fn new(machine: &MachineDesc) -> Units {
        Units {
            pools: machine
                .units()
                .iter()
                .map(|p| (p.class, vec![0u32; p.count as usize], 0u32))
                .collect(),
        }
    }

    /// The pool index backing `class`, if the machine has one.
    fn pool_of(&self, class: UnitClass) -> Option<usize> {
        self.pools.iter().position(|(c, _, _)| *c == class)
    }

    /// Finds a free instance in pool `pi` at time `now`, skipping
    /// instances already picked for another component of the same micro.
    fn find_free_in(&self, pi: usize, now: u32, picks: &[(usize, usize, u32)]) -> Option<usize> {
        let frees = &self.pools[pi].1;
        for (ui, free) in frees.iter().enumerate() {
            if *free <= now && !picks.iter().any(|&(p, u, _)| p == pi && u == ui) {
                return Some(ui);
            }
        }
        None
    }

    fn reserve(&mut self, pool: usize, unit: usize, now: u32, len: u32) {
        let (_, frees, busy) = &mut self.pools[pool];
        debug_assert!(frees[unit] <= now);
        frees[unit] = now + len;
        *busy += len;
    }

    fn busy_per_class(&self) -> Vec<(UnitClass, u32)> {
        self.pools.iter().map(|(c, _, b)| (*c, *b)).collect()
    }
}

/// Simulates one straight-line block.
///
/// # Errors
///
/// Returns [`SimError::NonConvergence`] if the stream cannot be fully
/// scheduled (only possible for malformed dependence structures).
pub fn simulate_block(machine: &MachineDesc, block: &BlockIr) -> Result<SimResult, SimError> {
    simulate_blocks(machine, std::iter::once(block))
}

/// Simulates a sequence of blocks as one stream with **independent**
/// inter-block dependences (each block's deps are internal), modeling
/// fully overlapped loop iterations; use it with `n` copies of a loop body
/// to measure steady-state iteration cost.
///
/// # Errors
///
/// Returns [`SimError::NonConvergence`] if the stream cannot be fully
/// scheduled.
pub fn simulate_blocks<'a>(
    machine: &MachineDesc,
    blocks: impl IntoIterator<Item = &'a BlockIr>,
) -> Result<SimResult, SimError> {
    let stream = expand_blocks(machine, blocks);
    let n = stream.n;

    // Reverse adjacency (dependents of each micro) in CSR form.
    let mut succ_off = vec![0u32; n + 1];
    for &d in &stream.deps {
        succ_off[d as usize + 1] += 1;
    }
    for i in 0..n {
        succ_off[i + 1] += succ_off[i];
    }
    let mut succ = vec![0u32; succ_off[n] as usize];
    let mut cursor = succ_off.clone();
    for i in 0..n {
        for &d in stream.deps_of(i) {
            succ[cursor[d as usize] as usize] = i as u32;
            cursor[d as usize] += 1;
        }
    }

    let mut unmet: Vec<u32> = (0..n)
        .map(|i| stream.deps_off[i + 1] - stream.deps_off[i])
        .collect();
    let mut ready: BinaryHeap<ReadyKey> = BinaryHeap::new();
    for (i, &u) in unmet.iter().enumerate() {
        if u == 0 {
            ready.push(ReadyKey::new(stream.priority[i], i));
        }
    }

    // Event queues: dependence finishes promote dependents; pass times are
    // the moments a cycle scan can make progress (all finish times plus
    // all reservation ends).
    let mut finish_events: BinaryHeap<std::cmp::Reverse<(u32, u32)>> = BinaryHeap::new();
    let mut pass_times: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();
    pass_times.push(std::cmp::Reverse(0));

    let mut units = Units::new(machine);
    let n_pools = units.pools.len();
    // Unit requirements per micro, pre-resolved to pool indices (CSR):
    // `(pool, noncoverable length)` per component that actually occupies
    // an instance; `u32::MAX` marks a class no pool backs. Resolving once
    // keeps class→pool lookups out of every issue attempt.
    let mut req_off = vec![0u32; n + 1];
    let mut req: Vec<(u32, u32)> = Vec::with_capacity(stream.costs.len());
    for i in 0..n {
        for &(class, noncov, _) in stream.costs_of(i) {
            if noncov > 0 {
                let pi = units.pool_of(class).map_or(u32::MAX, |p| p as u32);
                req.push((pi, noncov));
            }
        }
        req_off[i + 1] = req.len() as u32;
    }
    let mut issue_of_op: Vec<Option<u32>> = vec![None; stream.n_ops];
    let mut makespan = 0u32;
    let mut remaining = n;
    let mut picks: Vec<(usize, usize, u32)> = Vec::new();
    // Structurally stalled micros park in the queue of the pool that
    // refused them and are reconsidered only at passes where that pool has
    // an instance free — a micro blocked on the divider is not re-scanned
    // at every event in between. (The reference re-scans it every cycle;
    // every one of those scans fails, so skipping them is a no-op.)
    let mut waiting: Vec<BinaryHeap<ReadyKey>> = (0..n_pools).map(|_| BinaryHeap::new()).collect();
    // (pool, key) pairs parked during the current pass, distributed into
    // `waiting` only at pass end so one pass attempts each micro at most
    // once — exactly the reference's single scan per cycle.
    let mut parked: Vec<(usize, ReadyKey)> = Vec::new();
    let mut free_count = vec![0u32; n_pools];

    while remaining > 0 {
        let Some(std::cmp::Reverse(now)) = pass_times.pop() else {
            return Err(SimError::NonConvergence { remaining });
        };
        while pass_times.peek() == Some(&std::cmp::Reverse(now)) {
            pass_times.pop();
        }

        // Promote micros whose last dependence finished by `now`.
        while let Some(&std::cmp::Reverse((t, i))) = finish_events.peek() {
            if t > now {
                break;
            }
            finish_events.pop();
            let i = i as usize;
            for &s in &succ[succ_off[i] as usize..succ_off[i + 1] as usize] {
                let s = s as usize;
                unmet[s] -= 1;
                if unmet[s] == 0 {
                    ready.push(ReadyKey::new(stream.priority[s], s));
                }
            }
        }

        for (pi, (_, frees, _)) in units.pools.iter().enumerate() {
            free_count[pi] = frees.iter().filter(|f| **f <= now).count() as u32;
        }

        // One scan in static priority order — exactly the reference's
        // cycle-`now` pass restricted to micros that could issue: the
        // ready queue plus every waiting queue whose pool has an instance
        // free. Candidates are taken highest-key-first across the queues,
        // so attempt order matches the reference's static scan; waiting
        // queues of pools with nothing free are skipped wholesale, since
        // every one of their micros would fail its structural test.
        parked.clear();
        loop {
            let mut best: Option<(ReadyKey, usize)> = ready.peek().map(|&k| (k, n_pools));
            for (pi, heap) in waiting.iter().enumerate() {
                if free_count[pi] > 0 {
                    if let Some(&k) = heap.peek() {
                        if best.is_none_or(|(b, _)| k > b) {
                            best = Some((k, pi));
                        }
                    }
                }
            }
            let Some((key, src)) = best else { break };
            if src == n_pools {
                ready.pop();
            } else {
                waiting[src].pop();
            }
            let i = key.index.0;
            let reqs = &req[req_off[i] as usize..req_off[i + 1] as usize];
            // Fast path: some component's pool has nothing free — park
            // there without probing instances.
            if let Some(&(pi, _)) = reqs
                .iter()
                .find(|&&(pi, _)| pi != u32::MAX && free_count[pi as usize] == 0)
            {
                parked.push((pi as usize, key));
                continue;
            }
            picks.clear();
            let mut blocking_pool = None;
            let fits = reqs.iter().all(|&(pi, len)| {
                if pi == u32::MAX {
                    // A class no pool backs can never issue.
                    return false;
                }
                match units.find_free_in(pi as usize, now, &picks) {
                    Some(ui) => {
                        picks.push((pi as usize, ui, len));
                        true
                    }
                    None => {
                        blocking_pool = Some(pi as usize);
                        false
                    }
                }
            });
            if !fits {
                if let Some(pi) = blocking_pool {
                    parked.push((pi, key));
                }
                // A class no pool backs can never issue: leave the micro
                // unqueued, and the drained event queue reports
                // non-convergence with it still counted in `remaining`.
                continue;
            }
            for &(pi, ui, len) in &picks {
                units.reserve(pi, ui, now, len);
                free_count[pi] -= 1;
                pass_times.push(std::cmp::Reverse(now + len));
            }
            let finish = now + stream.latency[i];
            if makespan < finish {
                makespan = finish;
            }
            let op = stream.source_op[i] as usize;
            if issue_of_op[op].is_none() {
                issue_of_op[op] = Some(now);
            }
            remaining -= 1;
            if stream.latency[i] == 0 {
                // Immediate finish: dependents become ready mid-pass, just
                // as the reference's live readiness test would see them.
                for &s in &succ[succ_off[i] as usize..succ_off[i + 1] as usize] {
                    let s = s as usize;
                    unmet[s] -= 1;
                    if unmet[s] == 0 {
                        ready.push(ReadyKey::new(stream.priority[s], s));
                    }
                }
            } else {
                finish_events.push(std::cmp::Reverse((finish, i as u32)));
                pass_times.push(std::cmp::Reverse(finish));
            }
        }
        for (pi, key) in parked.drain(..) {
            waiting[pi].push(key);
        }
    }

    Ok(SimResult {
        makespan,
        issue_cycles: issue_of_op,
        unit_busy: busy_map(&units.busy_per_class()),
    })
}

/// Simulates `iterations` overlapped copies of a loop body and reports
/// `(first_iteration_makespan, steady_cycles_per_iteration)`.
///
/// # Errors
///
/// Returns [`SimError::NonConvergence`] if either stream cannot be fully
/// scheduled.
///
/// # Panics
///
/// Panics if `iterations < 2`.
pub fn simulate_loop(
    machine: &MachineDesc,
    body: &BlockIr,
    iterations: u32,
) -> Result<(u32, f64), SimError> {
    loop_measurement(body, iterations, |blocks| {
        simulate_blocks(machine, blocks.iter().copied())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::{machines, BasicOp};
    use presage_translate::ValueDef;

    fn chain(n: usize) -> BlockIr {
        let mut b = BlockIr::new();
        let mut v = b.add_value(ValueDef::External("x".into()));
        for _ in 0..n {
            v = b.emit(BasicOp::FAdd, vec![v, v]);
        }
        b
    }

    fn independent(n: usize) -> BlockIr {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        for _ in 0..n {
            b.emit(BasicOp::FAdd, vec![x, x]);
        }
        b
    }

    #[test]
    fn chain_pays_full_latency() {
        let m = machines::power_like();
        let r = simulate_block(&m, &chain(5)).unwrap();
        assert_eq!(r.makespan, 10, "5 × latency-2 adds");
    }

    #[test]
    fn independent_ops_pipeline() {
        let m = machines::power_like();
        let r = simulate_block(&m, &independent(5)).unwrap();
        assert_eq!(r.makespan, 6, "issue 1/cycle + final latency");
        assert_eq!(r.unit_busy[&UnitClass::Fpu], 5);
    }

    #[test]
    fn issue_cycles_respect_dependences() {
        let m = machines::power_like();
        let r = simulate_block(&m, &chain(3)).unwrap();
        assert_eq!(r.issue_cycles, vec![Some(0), Some(2), Some(4)]);
    }

    #[test]
    fn wide_machine_dual_issues() {
        let m = machines::wide4();
        let r = simulate_block(&m, &independent(8)).unwrap();
        // Two FPU pipes: last pair issues at cycle 3, plus fadd latency 3.
        assert_eq!(r.makespan, 6);
    }

    #[test]
    fn structural_hazard_serializes() {
        // Divides are unpipelined (19 noncoverable cycles on the FPU):
        // two independent divides still serialize on the single FPU.
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        b.emit(BasicOp::FDiv, vec![x, x]);
        b.emit(BasicOp::FDiv, vec![x, x]);
        let r = simulate_block(&m, &b).unwrap();
        assert_eq!(r.makespan, 38);
        assert_eq!(r.issue_cycles, vec![Some(0), Some(19)]);
    }

    #[test]
    fn multi_unit_op_reserves_both() {
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let v = b.add_value(ValueDef::External("v".into()));
        let a = b.add_value(ValueDef::External("a".into()));
        for _ in 0..3 {
            b.push_op(presage_translate::Op {
                basic: BasicOp::StoreFloat,
                args: vec![v, a],
                result: None,
                mem: None,
                extra_deps: vec![],
                callee: None,
            });
        }
        let r = simulate_block(&m, &b).unwrap();
        assert_eq!(r.unit_busy[&UnitClass::Fpu], 3);
        assert_eq!(r.unit_busy[&UnitClass::Fxu], 3);
    }

    #[test]
    fn loop_steady_state() {
        let m = machines::power_like();
        let (first, steady) = simulate_loop(&m, &chain(2), 8).unwrap();
        assert_eq!(first, 4);
        // Iterations are independent: the FPU issues 2 adds per iteration.
        assert!(steady <= 2.5, "got {steady}");
    }

    #[test]
    fn empty_block() {
        let m = machines::power_like();
        let r = simulate_block(&m, &BlockIr::new()).unwrap();
        assert_eq!(r.makespan, 0);
        assert!(r.issue_cycles.is_empty());
    }

    #[test]
    fn risc1_serializes_everything() {
        let m = machines::risc1();
        let r = simulate_block(&m, &independent(5)).unwrap();
        // One ALU, 1-cycle issue, 3-cycle latency: 5 issues + tail.
        assert_eq!(r.makespan, 7);
    }

    #[test]
    fn microless_op_has_no_issue_cycle() {
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        b.emit(BasicOp::FAdd, vec![x, x]);
        b.emit(BasicOp::Nop, vec![]);
        let r = simulate_block(&m, &b).unwrap();
        assert_eq!(r.issue_cycles, vec![Some(0), None]);
    }

    #[test]
    fn dependence_threads_through_zero_cost_op() {
        // fadd -> nop -> fadd: the trailing add must wait out the first
        // add's latency even though its direct producer has no micros.
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let a = b.emit(BasicOp::FAdd, vec![x, x]);
        let n = b.emit(BasicOp::Nop, vec![a]);
        b.emit(BasicOp::FAdd, vec![n, n]);
        let r = simulate_block(&m, &b).unwrap();
        assert_eq!(r.issue_cycles, vec![Some(0), None, Some(2)]);
        assert_eq!(r.makespan, 4);
    }
}
