//! Reference cycle-accurate list scheduler.
//!
//! Plays the role of the paper's trusted reference (IBM xlf's per-
//! instruction cycle counts): a detailed critical-path list scheduler over
//! the same atomic-operation streams, with full dependence tracking and
//! structural hazards, and none of the cost model's approximations (no
//! focus span, no greedy lowest-slot placement). Scheduling is
//! cycle-driven: at each cycle every ready operation is considered in
//! critical-path priority order and issued if all its functional-unit
//! components are free.

use presage_machine::{MachineDesc, UnitClass};
use presage_translate::BlockIr;
use std::collections::HashMap;

/// Result of simulating an operation stream.
#[derive(Clone, PartialEq, Debug)]
pub struct SimResult {
    /// Cycle at which the last result becomes available.
    pub makespan: u32,
    /// Issue cycle of each operation (index-aligned with the input ops).
    pub issue_cycles: Vec<u32>,
    /// Busy cycles per unit class.
    pub unit_busy: HashMap<UnitClass, u32>,
}

/// One schedulable micro-operation (an atomic op instance).
struct Micro {
    costs: Vec<(UnitClass, u32, u32)>, // (class, noncoverable, coverable)
    latency: u32,
    deps: Vec<usize>,
    /// Critical-path priority (longest latency chain to any sink).
    priority: u32,
    /// Which source op this belongs to (last micro holds the result).
    source_op: usize,
}

/// Free/busy timeline per unit instance.
struct Timeline {
    class: UnitClass,
    busy: Vec<bool>,
}

impl Timeline {
    fn is_free(&self, start: u32, len: u32) -> bool {
        (start..start + len).all(|t| !self.busy.get(t as usize).copied().unwrap_or(false))
    }

    fn reserve(&mut self, start: u32, len: u32) {
        let end = (start + len) as usize;
        if self.busy.len() < end {
            self.busy.resize(end.max(self.busy.len() * 2), false);
        }
        for t in start..start + len {
            self.busy[t as usize] = true;
        }
    }
}

/// Expands a block into micro-operations with dependence edges.
fn expand(machine: &MachineDesc, block: &BlockIr, micros: &mut Vec<Micro>, op_finish_micro: &mut Vec<usize>) {
    const NO_MICRO: usize = usize::MAX;
    let base: Vec<usize> = Vec::new();
    let _ = base;
    for (i, op) in block.ops.iter().enumerate() {
        let dep_micros: Vec<usize> = block
            .deps_of(op)
            .into_iter()
            .map(|d| op_finish_micro[d.0 as usize])
            .filter(|m| *m != NO_MICRO)
            .collect();
        let expansion = machine.expand(op.basic);
        let mut last = NO_MICRO;
        for (k, atomic_id) in expansion.iter().enumerate() {
            let atomic = machine.atomic(*atomic_id);
            if atomic.costs.is_empty() {
                continue;
            }
            let deps = if last == NO_MICRO { dep_micros.clone() } else { vec![last] };
            micros.push(Micro {
                costs: atomic
                    .costs
                    .iter()
                    .map(|c| (c.class, c.noncoverable, c.coverable))
                    .collect(),
                latency: atomic.latency(),
                deps,
                priority: 0,
                source_op: i,
            });
            last = micros.len() - 1;
            let _ = k;
        }
        op_finish_micro.push(last);
    }
}

/// Simulates one straight-line block.
pub fn simulate_block(machine: &MachineDesc, block: &BlockIr) -> SimResult {
    simulate_blocks(machine, std::iter::once(block))
}

/// Simulates a sequence of blocks as one stream with **independent**
/// inter-block dependences (each block's deps are internal), modeling
/// fully overlapped loop iterations; use it with `n` copies of a loop body
/// to measure steady-state iteration cost.
pub fn simulate_blocks<'a>(
    machine: &MachineDesc,
    blocks: impl IntoIterator<Item = &'a BlockIr>,
) -> SimResult {
    const NO_MICRO: usize = usize::MAX;
    let mut micros: Vec<Micro> = Vec::new();
    let mut issue_of_op: Vec<u32> = Vec::new();
    let mut block_op_offsets: Vec<(usize, usize)> = Vec::new(); // (op offset, micro count before)

    for block in blocks {
        let mut op_finish: Vec<usize> = Vec::new();
        let before = micros.len();
        // Shift: expand records op indices local to the block; remap below.
        expand(machine, block, &mut micros, &mut op_finish);
        for m in &mut micros[before..] {
            m.source_op += issue_of_op.len();
        }
        block_op_offsets.push((issue_of_op.len(), before));
        issue_of_op.extend(std::iter::repeat(0).take(block.ops.len()));
        let _ = op_finish;
    }

    // Critical-path priorities: reverse topological accumulation.
    let mut priority = vec![0u32; micros.len()];
    for i in (0..micros.len()).rev() {
        let p = priority[i] + micros[i].latency;
        for &d in &micros[i].deps {
            if d != NO_MICRO {
                priority[d] = priority[d].max(p);
            }
        }
    }
    for (m, p) in micros.iter_mut().zip(&priority) {
        m.priority = *p;
    }

    // Unit timelines.
    let mut timelines: Vec<Timeline> = Vec::new();
    for pool in machine.units() {
        for _ in 0..pool.count {
            timelines.push(Timeline { class: pool.class, busy: Vec::new() });
        }
    }

    let n = micros.len();
    let mut finish = vec![u32::MAX; n];
    let mut issued = vec![false; n];
    let mut remaining = n;
    let mut cycle: u32 = 0;
    let mut makespan = 0;
    // Order micros by priority for the per-cycle scan.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|a, b| micros[*b].priority.cmp(&micros[*a].priority).then(a.cmp(b)));

    while remaining > 0 {
        for &i in &order {
            if issued[i] {
                continue;
            }
            let m = &micros[i];
            // Ready: all deps finished by this cycle.
            let ready = m.deps.iter().all(|&d| finish[d] != u32::MAX && finish[d] <= cycle);
            if !ready {
                continue;
            }
            // Structural: each component needs a free instance now.
            let mut picks: Vec<(usize, u32)> = Vec::new();
            let ok = m.costs.iter().all(|&(class, noncov, _)| {
                if noncov == 0 {
                    return true;
                }
                match timelines
                    .iter()
                    .enumerate()
                    .find(|(ti, t)| {
                        t.class == class
                            && t.is_free(cycle, noncov)
                            && !picks.iter().any(|(pi, _)| pi == ti)
                    }) {
                    Some((ti, _)) => {
                        picks.push((ti, noncov));
                        true
                    }
                    None => false,
                }
            });
            if !ok {
                continue;
            }
            for (ti, len) in picks {
                timelines[ti].reserve(cycle, len);
            }
            issued[i] = true;
            finish[i] = cycle + micros[i].latency;
            makespan = makespan.max(finish[i]);
            issue_of_op[micros[i].source_op] = cycle;
            remaining -= 1;
        }
        cycle += 1;
        // Safety valve against scheduling bugs.
        assert!(cycle < 10_000_000, "simulator failed to converge");
    }

    let mut unit_busy: HashMap<UnitClass, u32> = HashMap::new();
    for t in &timelines {
        let busy = t.busy.iter().filter(|b| **b).count() as u32;
        *unit_busy.entry(t.class).or_insert(0) += busy;
    }
    SimResult { makespan, issue_cycles: issue_of_op, unit_busy }
}

/// Simulates `iterations` overlapped copies of a loop body and reports
/// `(first_iteration_makespan, steady_cycles_per_iteration)`.
pub fn simulate_loop(machine: &MachineDesc, body: &BlockIr, iterations: u32) -> (u32, f64) {
    assert!(iterations >= 2, "need at least two iterations");
    let first = simulate_block(machine, body).makespan;
    let copies: Vec<&BlockIr> = std::iter::repeat(body).take(iterations as usize).collect();
    let total = simulate_blocks(machine, copies.iter().copied()).makespan;
    let steady = (total - first) as f64 / (iterations - 1) as f64;
    (first, steady)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::{machines, BasicOp};
    use presage_translate::{BlockIr, ValueDef};

    fn chain(n: usize) -> BlockIr {
        let mut b = BlockIr::new();
        let mut v = b.add_value(ValueDef::External("x".into()));
        for _ in 0..n {
            v = b.emit(BasicOp::FAdd, vec![v, v]);
        }
        b
    }

    fn independent(n: usize) -> BlockIr {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        for _ in 0..n {
            b.emit(BasicOp::FAdd, vec![x, x]);
        }
        b
    }

    #[test]
    fn chain_pays_full_latency() {
        let m = machines::power_like();
        let r = simulate_block(&m, &chain(5));
        assert_eq!(r.makespan, 10, "5 × latency-2 adds");
    }

    #[test]
    fn independent_ops_pipeline() {
        let m = machines::power_like();
        let r = simulate_block(&m, &independent(5));
        assert_eq!(r.makespan, 6, "issue 1/cycle + final latency");
        assert_eq!(r.unit_busy[&presage_machine::UnitClass::Fpu], 5);
    }

    #[test]
    fn issue_cycles_respect_dependences() {
        let m = machines::power_like();
        let r = simulate_block(&m, &chain(3));
        assert_eq!(r.issue_cycles, vec![0, 2, 4]);
    }

    #[test]
    fn wide_machine_dual_issues() {
        let m = machines::wide4();
        let r = simulate_block(&m, &independent(8));
        // Two FPU pipes: last pair issues at cycle 3, plus fadd latency 3.
        assert_eq!(r.makespan, 6);
    }

    #[test]
    fn structural_hazard_serializes() {
        // Divides are unpipelined (19 noncoverable cycles on the FPU):
        // two independent divides still serialize on the single FPU.
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        b.emit(BasicOp::FDiv, vec![x, x]);
        b.emit(BasicOp::FDiv, vec![x, x]);
        let r = simulate_block(&m, &b);
        assert_eq!(r.makespan, 38);
    }

    #[test]
    fn multi_unit_op_reserves_both() {
        let m = machines::power_like();
        let mut b = BlockIr::new();
        let v = b.add_value(ValueDef::External("v".into()));
        let a = b.add_value(ValueDef::External("a".into()));
        for _ in 0..3 {
            b.push_op(presage_translate::Op {
                basic: BasicOp::StoreFloat,
                args: vec![v, a],
                result: None,
                mem: None,
                extra_deps: vec![],
                callee: None,
            });
        }
        let r = simulate_block(&m, &b);
        assert_eq!(r.unit_busy[&presage_machine::UnitClass::Fpu], 3);
        assert_eq!(r.unit_busy[&presage_machine::UnitClass::Fxu], 3);
    }

    #[test]
    fn loop_steady_state() {
        let m = machines::power_like();
        let (first, steady) = simulate_loop(&m, &chain(2), 8);
        assert_eq!(first, 4);
        // Iterations are independent: the FPU issues 2 adds per iteration.
        assert!(steady <= 2.5, "got {steady}");
    }

    #[test]
    fn empty_block() {
        let m = machines::power_like();
        let r = simulate_block(&m, &BlockIr::new());
        assert_eq!(r.makespan, 0);
    }

    #[test]
    fn risc1_serializes_everything() {
        let m = machines::risc1();
        let r = simulate_block(&m, &independent(5));
        // One ALU, 1-cycle issue, 3-cycle latency: 5 issues + tail.
        assert_eq!(r.makespan, 7);
    }
}
