//! Differential test: the event-driven scheduler must reproduce the
//! retained cycle-driven reference **bit-for-bit** — same makespan, same
//! per-op issue cycles, same per-class busy counts — on every shipped
//! machine, over the Figure 7 kernel suite and seeded randomized blocks
//! (chains, fans, multi-unit stores, unpipelined divides).

use presage_bench::kernels::{figure7, innermost_block};
use presage_machine::{machines, BasicOp, MachineDesc};
use presage_sim::{reference, scheduler, simulate_loop};
use presage_translate::{BlockIr, ValueDef, ValueId};

/// splitmix64 — deterministic, dependency-free (mirrors `tests/properties.rs`).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn assert_engines_agree(machine: &MachineDesc, block: &BlockIr, what: &str) {
    let event = scheduler::simulate_block(machine, block)
        .unwrap_or_else(|e| panic!("{what} on {}: event engine: {e}", machine.name()));
    let oracle = reference::simulate_block(machine, block)
        .unwrap_or_else(|e| panic!("{what} on {}: reference engine: {e}", machine.name()));
    assert_eq!(
        event.makespan,
        oracle.makespan,
        "{what} on {}: makespan",
        machine.name()
    );
    assert_eq!(
        event.issue_cycles,
        oracle.issue_cycles,
        "{what} on {}: issue cycles",
        machine.name()
    );
    assert_eq!(
        event.unit_busy,
        oracle.unit_busy,
        "{what} on {}: unit busy",
        machine.name()
    );
}

#[test]
fn figure7_suite_on_all_machines() {
    for machine in machines::all() {
        for k in figure7() {
            let block = innermost_block(k.source, &machine);
            assert_engines_agree(&machine, &block, k.name);
        }
    }
}

#[test]
fn figure7_multi_block_streams_agree() {
    // 8 overlapped copies of each kernel body — the `simulate_blocks`
    // stream shape the overlap table measures.
    for machine in machines::all() {
        for k in figure7() {
            let block = innermost_block(k.source, &machine);
            let copies: Vec<&BlockIr> = std::iter::repeat(&block).take(8).collect();
            let event = scheduler::simulate_blocks(&machine, copies.iter().copied()).unwrap();
            let oracle = reference::simulate_blocks(&machine, copies.iter().copied()).unwrap();
            assert_eq!(event, oracle, "{} stream on {}", k.name, machine.name());
        }
    }
}

#[test]
fn simulate_loop_agrees() {
    for machine in machines::all() {
        for k in figure7() {
            let block = innermost_block(k.source, &machine);
            assert_eq!(
                simulate_loop(&machine, &block, 8).unwrap(),
                reference::simulate_loop(&machine, &block, 8).unwrap(),
                "{} loop on {}",
                k.name,
                machine.name()
            );
        }
    }
}

/// Random blocks biased toward the shapes that stress a scheduler:
/// dependence chains, wide fans from a shared producer, multi-unit
/// stores (address + data ports), unpipelined divides/square roots, and
/// zero-cost ops in the middle of chains.
fn random_block(rng: &mut Rng) -> BlockIr {
    const OPS: [BasicOp; 12] = [
        BasicOp::FAdd,
        BasicOp::FMul,
        BasicOp::Fma,
        BasicOp::FDiv,
        BasicOp::FSqrt,
        BasicOp::IAdd,
        BasicOp::IMul,
        BasicOp::LoadFloat,
        BasicOp::StoreFloat,
        BasicOp::AddrCalc,
        BasicOp::BranchCond,
        BasicOp::Nop,
    ];
    let mut b = BlockIr::new();
    let x = b.add_value(ValueDef::External("x".into()));
    let mut produced: Vec<ValueId> = vec![x];
    for _ in 0..2 + rng.below(50) {
        let basic = OPS[rng.below(OPS.len() as u64) as usize];
        let pick = |rng: &mut Rng, vals: &[ValueId]| vals[rng.below(vals.len() as u64) as usize];
        let args = match rng.below(3) {
            // Chain: depend on the most recent value.
            0 => vec![*produced.last().unwrap(), pick(rng, &produced)],
            // Fan: depend on an arbitrary earlier value (many ops share it).
            1 => vec![pick(rng, &produced), pick(rng, &produced)],
            // Independent: external input only.
            _ => vec![x, x],
        };
        produced.push(b.emit(basic, args));
    }
    b
}

#[test]
fn randomized_blocks_on_all_machines() {
    let machines = machines::all();
    let mut rng = Rng(0xF16_7AB1E);
    for round in 0..60 {
        let block = random_block(&mut rng);
        for machine in &machines {
            assert_engines_agree(machine, &block, &format!("random block #{round}"));
        }
    }
}

#[test]
fn zero_cost_op_mid_chain_agrees_on_all_machines() {
    // The PR 4 dependence-threading regression, run differentially.
    for machine in machines::all() {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let a = b.emit(BasicOp::FDiv, vec![x, x]);
        let n = b.emit(BasicOp::Nop, vec![a]);
        b.emit(BasicOp::FAdd, vec![n, n]);
        assert_engines_agree(&machine, &b, "fdiv -> nop -> fadd");
    }
}
