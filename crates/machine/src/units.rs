//! Functional units of a superscalar processor.
//!
//! The paper's cost model views the processor as "a two dimensional unit
//! with multiple functional bins in one dimension and time slots in another
//! dimension" (Figure 3). Each *pool* below becomes one or more bins; pools
//! with `count > 1` model architectures "with multiple operation pipes"
//! for which "more bins can be added".

use std::fmt;

/// The architectural class of a functional unit pool.
///
/// Classes mirror the bins in the paper's Figure 3 (FXU, FPU, BranchU,
/// CR-LogicU, Load/StoreU) plus a generic ALU for simple scalar machines
/// and a dispatch stage for modeling issue-width limits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum UnitClass {
    /// Fixed-point (integer) unit — the paper's FXU.
    Fxu,
    /// Floating-point unit — the paper's FPU.
    Fpu,
    /// Branch unit.
    Branch,
    /// Condition-register / logic unit — the paper's CR-LogicU.
    CrLogic,
    /// Load/store (memory port) unit.
    LoadStore,
    /// Generic ALU for simple scalar machines.
    Alu,
    /// Instruction dispatch stage; one slot per instruction models the
    /// machine's issue width.
    Dispatch,
}

impl UnitClass {
    /// All unit classes, for table-driven validation and display.
    pub const ALL: [UnitClass; 7] = [
        UnitClass::Fxu,
        UnitClass::Fpu,
        UnitClass::Branch,
        UnitClass::CrLogic,
        UnitClass::LoadStore,
        UnitClass::Alu,
        UnitClass::Dispatch,
    ];

    /// The stable identifier used in JSON machine descriptions (the Rust
    /// variant name, e.g. `"LoadStore"`).
    pub fn variant_name(&self) -> &'static str {
        match self {
            UnitClass::Fxu => "Fxu",
            UnitClass::Fpu => "Fpu",
            UnitClass::Branch => "Branch",
            UnitClass::CrLogic => "CrLogic",
            UnitClass::LoadStore => "LoadStore",
            UnitClass::Alu => "Alu",
            UnitClass::Dispatch => "Dispatch",
        }
    }

    /// Inverse of [`UnitClass::variant_name`], for JSON loading.
    pub fn from_variant_name(name: &str) -> Option<UnitClass> {
        UnitClass::ALL
            .into_iter()
            .find(|c| c.variant_name() == name)
    }

    /// Short display name matching the paper's figure labels.
    pub fn label(&self) -> &'static str {
        match self {
            UnitClass::Fxu => "FXU",
            UnitClass::Fpu => "FPU",
            UnitClass::Branch => "BranchU",
            UnitClass::CrLogic => "CR-LogicU",
            UnitClass::LoadStore => "Ld/StU",
            UnitClass::Alu => "ALU",
            UnitClass::Dispatch => "Dispatch",
        }
    }
}

impl fmt::Display for UnitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A pool of identical functional units.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnitPool {
    /// The class served by this pool.
    pub class: UnitClass,
    /// Number of identical units (bins) in the pool; must be ≥ 1.
    pub count: u8,
}

impl UnitPool {
    /// A pool of `count` units of the given class.
    pub fn new(class: UnitClass, count: u8) -> UnitPool {
        UnitPool { class, count }
    }
}

impl fmt::Display for UnitPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 1 {
            write!(f, "{}", self.class)
        } else {
            write!(f, "{}×{}", self.class, self.count)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = UnitClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), UnitClass::ALL.len());
    }

    #[test]
    fn display() {
        assert_eq!(UnitPool::new(UnitClass::Fpu, 1).to_string(), "FPU");
        assert_eq!(UnitPool::new(UnitClass::Fxu, 2).to_string(), "FXU×2");
    }

    #[test]
    fn variant_names_roundtrip() {
        for c in UnitClass::ALL {
            assert_eq!(UnitClass::from_variant_name(c.variant_name()), Some(c));
        }
        assert_eq!(UnitClass::from_variant_name("NoSuchUnit"), None);
    }
}
