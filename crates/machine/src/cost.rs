//! Atomic operations and their two-component costs (paper §2.1).
//!
//! "Unlike previous cost models, the cost of operations is divided into two
//! components: *noncoverable cost* — the time that a functional unit
//! actually dedicates to the operation — and *coverable cost* — the time
//! when the next operation that does not depend on the result of the
//! current operation can be started."

use crate::json::Json;
use crate::units::UnitClass;
use std::fmt;

/// Index of an atomic operation in a machine's atomic-operation table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AtomicOpId(pub u16);

impl fmt::Display for AtomicOpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The cost an atomic operation imposes on one functional-unit class.
///
/// The paper's floating-point add has `noncoverable = 1, coverable = 1` on
/// the FPU: it busies the unit for one cycle, and a *dependent* operation
/// must additionally wait out the coverable cycle, while an independent
/// operation may issue immediately after the noncoverable cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UnitCost {
    /// Which unit class is occupied.
    pub class: UnitClass,
    /// Solid cycles: no other operation's noncoverable cost may share them.
    pub noncoverable: u32,
    /// Transparent cycles: latency visible only to dependent operations.
    pub coverable: u32,
}

impl UnitCost {
    /// Convenience constructor.
    pub fn new(class: UnitClass, noncoverable: u32, coverable: u32) -> UnitCost {
        UnitCost {
            class,
            noncoverable,
            coverable,
        }
    }

    /// Total per-unit latency `noncoverable + coverable`.
    pub fn latency(&self) -> u32 {
        self.noncoverable + self.coverable
    }
}

impl fmt::Display for UnitCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}+{}c",
            self.class, self.noncoverable, self.coverable
        )
    }
}

/// An atomic operation: "specific low level instructions supported by the
/// processor architecture", each with costs on one or more functional units
/// ("an operation can have costs on multiple functional units").
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AtomicOpDef {
    /// Mnemonic for diagnostics and rendering.
    pub name: String,
    /// Costs on each unit class this operation occupies.
    pub costs: Vec<UnitCost>,
}

impl AtomicOpDef {
    /// Builds an atomic operation definition.
    pub fn new(name: impl Into<String>, costs: Vec<UnitCost>) -> AtomicOpDef {
        AtomicOpDef {
            name: name.into(),
            costs,
        }
    }

    /// Result latency: cycles until a dependent operation may start, i.e.
    /// the maximum `noncoverable + coverable` over all unit components.
    pub fn latency(&self) -> u32 {
        self.costs.iter().map(UnitCost::latency).max().unwrap_or(0)
    }

    /// Busy (noncoverable) cycles on a given unit class, 0 if unused.
    pub fn busy_on(&self, class: UnitClass) -> u32 {
        self.costs
            .iter()
            .filter(|c| c.class == class)
            .map(|c| c.noncoverable)
            .sum()
    }

    /// Total noncoverable work across all units — the resource demand used
    /// by operation-count baselines and lower bounds.
    pub fn total_busy(&self) -> u32 {
        self.costs.iter().map(|c| c.noncoverable).sum()
    }

    /// Returns `true` if the operation occupies the given unit class.
    pub fn uses(&self, class: UnitClass) -> bool {
        self.costs.iter().any(|c| c.class == class)
    }
}

impl UnitCost {
    /// Serializes to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("class".into(), Json::Str(self.class.variant_name().into())),
            ("noncoverable".into(), Json::Num(self.noncoverable as f64)),
            ("coverable".into(), Json::Num(self.coverable as f64)),
        ])
    }

    /// Deserializes from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<UnitCost, String> {
        let class_name = v
            .get("class")
            .and_then(Json::as_str)
            .ok_or("unit cost missing `class`")?;
        let class = UnitClass::from_variant_name(class_name)
            .ok_or_else(|| format!("unknown unit class `{class_name}`"))?;
        let noncoverable = v
            .get("noncoverable")
            .and_then(Json::as_u64)
            .ok_or("unit cost missing `noncoverable`")? as u32;
        let coverable = v
            .get("coverable")
            .and_then(Json::as_u64)
            .ok_or("unit cost missing `coverable`")? as u32;
        Ok(UnitCost {
            class,
            noncoverable,
            coverable,
        })
    }
}

impl AtomicOpDef {
    /// Serializes to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            (
                "costs".into(),
                Json::Arr(self.costs.iter().map(UnitCost::to_json).collect()),
            ),
        ])
    }

    /// Deserializes from a JSON object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<AtomicOpDef, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("atomic op missing `name`")?
            .to_string();
        let costs = v
            .get("costs")
            .and_then(Json::as_arr)
            .ok_or("atomic op missing `costs`")?
            .iter()
            .map(UnitCost::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(AtomicOpDef { name, costs })
    }
}

impl fmt::Display for AtomicOpDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [", self.name)?;
        for (i, c) in self.costs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fadd() -> AtomicOpDef {
        AtomicOpDef::new("fadd", vec![UnitCost::new(UnitClass::Fpu, 1, 1)])
    }

    fn fstore() -> AtomicOpDef {
        // The paper's example: FP store occupies the FPU for two cycles
        // (one coverable) and an integer unit for one cycle.
        AtomicOpDef::new(
            "stfd",
            vec![
                UnitCost::new(UnitClass::Fpu, 1, 1),
                UnitCost::new(UnitClass::Fxu, 1, 0),
            ],
        )
    }

    #[test]
    fn paper_fadd_costs() {
        let op = fadd();
        assert_eq!(op.latency(), 2, "dependent op waits 2 cycles");
        assert_eq!(op.busy_on(UnitClass::Fpu), 1, "unit busy only 1 cycle");
        assert_eq!(op.busy_on(UnitClass::Fxu), 0);
    }

    #[test]
    fn paper_fstore_multi_unit() {
        let op = fstore();
        assert!(op.uses(UnitClass::Fpu) && op.uses(UnitClass::Fxu));
        assert_eq!(op.latency(), 2);
        assert_eq!(op.total_busy(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(fadd().to_string(), "fadd [FPU:1+1c]");
        assert_eq!(fstore().to_string(), "stfd [FPU:1+1c, FXU:1+0c]");
    }

    #[test]
    fn zero_cost_op() {
        let nop = AtomicOpDef::new("nop", vec![]);
        assert_eq!(nop.latency(), 0);
        assert_eq!(nop.total_busy(), 0);
    }

    #[test]
    fn json_roundtrip() {
        use crate::json::Json;
        let op = fstore();
        let json = op.to_json().to_string_pretty();
        let back = AtomicOpDef::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(op, back);
    }
}
