//! Minimal self-contained JSON reader/writer for machine descriptions.
//!
//! The environment this reproduction builds in has no network access, so
//! the crate cannot pull `serde`/`serde_json`. Machine descriptions only
//! need a small, fixed subset of JSON — objects, arrays, strings, integers
//! and booleans — which this module parses into a [`Json`] tree and
//! pretty-prints in the same layout `serde_json` used for the shipped
//! `machines/*.json` files (two-space indent, `": "` separators), keeping
//! those files byte-stable under a load/save round trip.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (machine descriptions only use integers that fit f64
    /// exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved for stable output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed input (including
    /// trailing garbage after the top-level value).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Pretty-prints with two-space indentation (the `serde_json` layout
    /// the shipped machine files were generated with).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Prints on one line with no whitespace — the JSON-lines framing the
    /// prediction server emits (one response object per line, so a `\n`
    /// inside the payload would corrupt the stream; strings escape it).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) => self.write(out, 0),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unmodified).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
        assert_eq!(Json::parse("-12").unwrap(), Json::Num(-12.0));
        assert_eq!(Json::parse("3.5").unwrap(), Json::Num(3.5));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested() {
        let v = Json::parse(r#"{"a": [1, 2], "b": {"c": true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn pretty_roundtrip() {
        let text = "{\n  \"name\": \"toy\",\n  \"xs\": [\n    1,\n    2\n  ],\n  \"on\": true\n}";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string_pretty(), text);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap().to_string_pretty(), "[]");
        assert_eq!(Json::parse("{}").unwrap().to_string_pretty(), "{}");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }
}
