//! Predefined machine descriptions.
//!
//! [`power_like`] follows the IBM POWER examples given in the paper
//! (1+1-cycle FP add, multi-unit FP store, 3/5-cycle integer multiply,
//! fused multiply-add). [`risc1`] is a single-pipe scalar RISC used to
//! show the portability claim, and [`wide4`] is a wider superscalar used
//! in ablations. All three are ordinary data: users can build their own
//! with [`crate::MachineBuilder`] or load JSON.

use crate::cost::UnitCost;
use crate::desc::{MachineBuilder, MachineDesc};
use crate::ops::BasicOp;
use crate::units::UnitClass;

/// A POWER/RS 6000-flavoured superscalar: FXU, FPU, BranchU, CR-LogicU and
/// a load/store port — the five bins of the paper's Figure 3.
///
/// Cost highlights taken from the paper's text:
/// - `fadd`: 1 noncoverable + 1 coverable cycle on the FPU;
/// - `stfd` (FP store): FPU 2 cycles (1 coverable) **and** FXU 1 cycle;
/// - integer multiply: 3 cycles for small multipliers, 5 in general;
/// - fused multiply-add with the same pipeline shape as `fadd`.
pub fn power_like() -> MachineDesc {
    let mut b = MachineBuilder::new("power-like");
    b.unit(UnitClass::Fxu, 1)
        .unit(UnitClass::Fpu, 1)
        .unit(UnitClass::Branch, 1)
        .unit(UnitClass::CrLogic, 1)
        .unit(UnitClass::LoadStore, 1)
        .supports_fma(true)
        .register_load_limit(28);

    let fxu = |n, c| UnitCost::new(UnitClass::Fxu, n, c);
    let fpu = |n, c| UnitCost::new(UnitClass::Fpu, n, c);
    let bru = |n, c| UnitCost::new(UnitClass::Branch, n, c);
    let cru = |n, c| UnitCost::new(UnitClass::CrLogic, n, c);
    let lsu = |n, c| UnitCost::new(UnitClass::LoadStore, n, c);

    let iadd = b.atomic("a", vec![fxu(1, 0)]);
    let imul_s = b.atomic("muli.s", vec![fxu(3, 0)]);
    let imul = b.atomic("muli", vec![fxu(5, 0)]);
    let idiv = b.atomic("divi", vec![fxu(19, 0)]);
    let ishift = b.atomic("sl", vec![fxu(1, 0)]);
    let icmp = b.atomic("cmp", vec![fxu(1, 0), cru(1, 1)]);
    let fadd = b.atomic("fa", vec![fpu(1, 1)]);
    let fmul = b.atomic("fm", vec![fpu(1, 1)]);
    let fma = b.atomic("fma", vec![fpu(1, 1)]);
    let fdiv = b.atomic("fd", vec![fpu(19, 0)]);
    let fsqrt = b.atomic("fsqrt", vec![fpu(27, 0)]);
    let fneg = b.atomic("fneg", vec![fpu(1, 0)]);
    let fcmp = b.atomic("fcmp", vec![fpu(1, 0), cru(1, 1)]);
    // Loads: one FXU cycle for address generation plus the cache port; the
    // loaded value is available after one further (coverable) cycle.
    let load = b.atomic("l", vec![fxu(1, 0), lsu(1, 1)]);
    let store = b.atomic("st", vec![fxu(1, 0), lsu(1, 0)]);
    // The paper's FP store: FPU 1+1 and one integer-unit cycle.
    let stfd = b.atomic("stfd", vec![fpu(1, 1), fxu(1, 0), lsu(1, 0)]);
    let lfd = b.atomic("lfd", vec![fxu(1, 0), lsu(1, 1)]);
    let br = b.atomic("b", vec![bru(1, 0)]);
    let bc = b.atomic("bc", vec![bru(1, 0), cru(1, 0)]);
    let call = b.atomic("bl", vec![bru(2, 0)]);
    let cvt = b.atomic("fcvt", vec![fpu(1, 1)]);
    let mov = b.atomic("mr", vec![fxu(1, 0)]);

    b.map(BasicOp::IAdd, [iadd])
        .map(BasicOp::ISub, [iadd])
        .map(BasicOp::INeg, [iadd])
        .map(BasicOp::IMulSmall, [imul_s])
        .map(BasicOp::IMul, [imul])
        .map(BasicOp::IDiv, [idiv])
        .map(BasicOp::IShift, [ishift])
        .map(BasicOp::ILogic, [ishift])
        .map(BasicOp::ICmp, [icmp])
        .map(BasicOp::FAdd, [fadd])
        .map(BasicOp::FSub, [fadd])
        .map(BasicOp::FMul, [fmul])
        .map(BasicOp::FDiv, [fdiv])
        .map(BasicOp::Fma, [fma])
        .map(BasicOp::FNeg, [fneg])
        .map(BasicOp::FAbs, [fneg])
        .map(BasicOp::FCmp, [fcmp])
        .map(BasicOp::FSqrt, [fsqrt])
        .map(BasicOp::LoadInt, [load])
        .map(BasicOp::StoreInt, [store])
        .map(BasicOp::LoadFloat, [lfd])
        .map(BasicOp::StoreFloat, [stfd])
        .map(BasicOp::AddrCalc, [iadd])
        .map(BasicOp::Branch, [br])
        .map(BasicOp::BranchCond, [bc])
        .map(BasicOp::Call, [call])
        .map(BasicOp::Return, [br])
        .map(BasicOp::Convert, [cvt])
        .map(BasicOp::Move, [mov]);

    b.build()
        .expect("power_like is a valid machine description")
}

/// A single-pipe pipelined scalar RISC: every operation issues through one
/// ALU, latencies appear as coverable cycles. Demonstrates retargeting the
/// cost model by swapping tables only.
pub fn risc1() -> MachineDesc {
    let mut b = MachineBuilder::new("risc1");
    b.unit(UnitClass::Alu, 1).register_load_limit(16);
    let alu = |n, c| UnitCost::new(UnitClass::Alu, n, c);

    let op1 = b.atomic("op1", vec![alu(1, 0)]);
    let op2 = b.atomic("op2", vec![alu(1, 1)]);
    let op3 = b.atomic("op3", vec![alu(1, 2)]);
    let imul = b.atomic("mul", vec![alu(4, 0)]);
    let idiv = b.atomic("div", vec![alu(20, 0)]);
    let fdiv = b.atomic("fdiv", vec![alu(24, 0)]);
    let fsqrt = b.atomic("fsqrt", vec![alu(30, 0)]);
    // No FMA: a multiply-add costs a multiply plus an add.
    b.map(BasicOp::IAdd, [op1])
        .map(BasicOp::ISub, [op1])
        .map(BasicOp::INeg, [op1])
        .map(BasicOp::IMulSmall, [imul])
        .map(BasicOp::IMul, [imul])
        .map(BasicOp::IDiv, [idiv])
        .map(BasicOp::IShift, [op1])
        .map(BasicOp::ILogic, [op1])
        .map(BasicOp::ICmp, [op1])
        .map(BasicOp::FAdd, [op3])
        .map(BasicOp::FSub, [op3])
        .map(BasicOp::FMul, [op3])
        .map(BasicOp::FDiv, [fdiv])
        .map(BasicOp::Fma, [op3, op3])
        .map(BasicOp::FNeg, [op1])
        .map(BasicOp::FAbs, [op1])
        .map(BasicOp::FCmp, [op2])
        .map(BasicOp::FSqrt, [fsqrt])
        .map(BasicOp::LoadInt, [op2])
        .map(BasicOp::StoreInt, [op1])
        .map(BasicOp::LoadFloat, [op2])
        .map(BasicOp::StoreFloat, [op1])
        .map(BasicOp::AddrCalc, [op1])
        .map(BasicOp::Branch, [op2])
        .map(BasicOp::BranchCond, [op2])
        .map(BasicOp::Call, [op3])
        .map(BasicOp::Return, [op2])
        .map(BasicOp::Convert, [op2])
        .map(BasicOp::Move, [op1]);

    b.build().expect("risc1 is a valid machine description")
}

/// A 4-wide superscalar with duplicated FXU/FPU pipes and two memory ports,
/// for ablation studies on unit parallelism.
pub fn wide4() -> MachineDesc {
    let mut b = MachineBuilder::new("wide4");
    b.unit(UnitClass::Fxu, 2)
        .unit(UnitClass::Fpu, 2)
        .unit(UnitClass::Branch, 1)
        .unit(UnitClass::CrLogic, 1)
        .unit(UnitClass::LoadStore, 2)
        .supports_fma(true)
        .register_load_limit(32);

    let fxu = |n, c| UnitCost::new(UnitClass::Fxu, n, c);
    let fpu = |n, c| UnitCost::new(UnitClass::Fpu, n, c);
    let bru = |n, c| UnitCost::new(UnitClass::Branch, n, c);
    let cru = |n, c| UnitCost::new(UnitClass::CrLogic, n, c);
    let lsu = |n, c| UnitCost::new(UnitClass::LoadStore, n, c);

    let iadd = b.atomic("a", vec![fxu(1, 0)]);
    let imul = b.atomic("muli", vec![fxu(2, 1)]);
    let idiv = b.atomic("divi", vec![fxu(12, 0)]);
    let icmp = b.atomic("cmp", vec![fxu(1, 0), cru(1, 0)]);
    let fadd = b.atomic("fa", vec![fpu(1, 2)]);
    let fma = b.atomic("fma", vec![fpu(1, 3)]);
    let fdiv = b.atomic("fd", vec![fpu(14, 0)]);
    let fsqrt = b.atomic("fsqrt", vec![fpu(20, 0)]);
    let fsimple = b.atomic("fmr", vec![fpu(1, 0)]);
    let load = b.atomic("l", vec![lsu(1, 2)]);
    let store = b.atomic("st", vec![lsu(1, 0)]);
    let br = b.atomic("b", vec![bru(1, 0)]);
    let bc = b.atomic("bc", vec![bru(1, 0), cru(1, 0)]);

    b.map(BasicOp::IAdd, [iadd])
        .map(BasicOp::ISub, [iadd])
        .map(BasicOp::INeg, [iadd])
        .map(BasicOp::IMulSmall, [imul])
        .map(BasicOp::IMul, [imul])
        .map(BasicOp::IDiv, [idiv])
        .map(BasicOp::IShift, [iadd])
        .map(BasicOp::ILogic, [iadd])
        .map(BasicOp::ICmp, [icmp])
        .map(BasicOp::FAdd, [fadd])
        .map(BasicOp::FSub, [fadd])
        .map(BasicOp::FMul, [fadd])
        .map(BasicOp::FDiv, [fdiv])
        .map(BasicOp::Fma, [fma])
        .map(BasicOp::FNeg, [fsimple])
        .map(BasicOp::FAbs, [fsimple])
        .map(BasicOp::FCmp, [fsimple])
        .map(BasicOp::FSqrt, [fsqrt])
        .map(BasicOp::LoadInt, [load])
        .map(BasicOp::StoreInt, [store])
        .map(BasicOp::LoadFloat, [load])
        .map(BasicOp::StoreFloat, [store])
        .map(BasicOp::AddrCalc, [iadd])
        .map(BasicOp::Branch, [br])
        .map(BasicOp::BranchCond, [bc])
        .map(BasicOp::Call, [br])
        .map(BasicOp::Return, [br])
        .map(BasicOp::Convert, [fsimple])
        .map(BasicOp::Move, [iadd]);

    b.build().expect("wide4 is a valid machine description")
}

/// An aggressive 8-wide superscalar ("future machine"): quad FXU/FPU
/// pipes, deep FP latency, four memory ports. On FMA-rich code the naive
/// latency-sum model misses nearly an order of magnitude here — the
/// paper's "off by a factor of ten" scenario.
pub fn wide8() -> MachineDesc {
    let mut b = MachineBuilder::new("wide8");
    b.unit(UnitClass::Fxu, 4)
        .unit(UnitClass::Fpu, 4)
        .unit(UnitClass::Branch, 2)
        .unit(UnitClass::CrLogic, 2)
        .unit(UnitClass::LoadStore, 4)
        .supports_fma(true)
        .register_load_limit(64);

    let fxu = |n, c| UnitCost::new(UnitClass::Fxu, n, c);
    let fpu = |n, c| UnitCost::new(UnitClass::Fpu, n, c);
    let bru = |n, c| UnitCost::new(UnitClass::Branch, n, c);
    let cru = |n, c| UnitCost::new(UnitClass::CrLogic, n, c);
    let lsu = |n, c| UnitCost::new(UnitClass::LoadStore, n, c);

    let iadd = b.atomic("a", vec![fxu(1, 0)]);
    let imul = b.atomic("muli", vec![fxu(1, 2)]);
    let idiv = b.atomic("divi", vec![fxu(10, 0)]);
    let icmp = b.atomic("cmp", vec![fxu(1, 0), cru(1, 0)]);
    let fadd = b.atomic("fa", vec![fpu(1, 3)]);
    let fma = b.atomic("fma", vec![fpu(1, 4)]);
    let fdiv = b.atomic("fd", vec![fpu(12, 0)]);
    let fsqrt = b.atomic("fsqrt", vec![fpu(16, 0)]);
    let fsimple = b.atomic("fmr", vec![fpu(1, 0)]);
    let load = b.atomic("l", vec![lsu(1, 3)]);
    let store = b.atomic("st", vec![lsu(1, 0)]);
    let br = b.atomic("b", vec![bru(1, 0)]);
    let bc = b.atomic("bc", vec![bru(1, 0), cru(1, 0)]);

    b.map(BasicOp::IAdd, [iadd])
        .map(BasicOp::ISub, [iadd])
        .map(BasicOp::INeg, [iadd])
        .map(BasicOp::IMulSmall, [imul])
        .map(BasicOp::IMul, [imul])
        .map(BasicOp::IDiv, [idiv])
        .map(BasicOp::IShift, [iadd])
        .map(BasicOp::ILogic, [iadd])
        .map(BasicOp::ICmp, [icmp])
        .map(BasicOp::FAdd, [fadd])
        .map(BasicOp::FSub, [fadd])
        .map(BasicOp::FMul, [fadd])
        .map(BasicOp::FDiv, [fdiv])
        .map(BasicOp::Fma, [fma])
        .map(BasicOp::FNeg, [fsimple])
        .map(BasicOp::FAbs, [fsimple])
        .map(BasicOp::FCmp, [fsimple])
        .map(BasicOp::FSqrt, [fsqrt])
        .map(BasicOp::LoadInt, [load])
        .map(BasicOp::StoreInt, [store])
        .map(BasicOp::LoadFloat, [load])
        .map(BasicOp::StoreFloat, [store])
        .map(BasicOp::AddrCalc, [iadd])
        .map(BasicOp::Branch, [br])
        .map(BasicOp::BranchCond, [bc])
        .map(BasicOp::Call, [br])
        .map(BasicOp::Return, [br])
        .map(BasicOp::Convert, [fsimple])
        .map(BasicOp::Move, [iadd]);

    b.build().expect("wide8 is a valid machine description")
}

/// All predefined machines, by name.
pub fn all() -> Vec<MachineDesc> {
    vec![power_like(), risc1(), wide4(), wide8()]
}

/// Looks up a predefined machine by name.
pub fn by_name(name: &str) -> Option<MachineDesc> {
    all().into_iter().find(|m| m.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_machines_validate() {
        for m in all() {
            assert!(!m.name().is_empty());
            // Every basic op must expand with positive latency except
            // pure-control conveniences.
            for op in BasicOp::ALL {
                assert!(!m.expand(op).is_empty(), "{} lacks {op}", m.name());
            }
        }
    }

    #[test]
    fn power_fadd_matches_paper() {
        let m = power_like();
        assert_eq!(
            m.latency_of(BasicOp::FAdd),
            2,
            "1 noncoverable + 1 coverable"
        );
        assert_eq!(m.busy_of(BasicOp::FAdd), 1);
    }

    #[test]
    fn power_fp_store_multi_unit() {
        let m = power_like();
        let ids = m.expand(BasicOp::StoreFloat);
        let def = m.atomic(ids[0]);
        assert!(def.uses(UnitClass::Fpu) && def.uses(UnitClass::Fxu));
        assert_eq!(def.busy_on(UnitClass::Fpu), 1);
        assert_eq!(def.latency(), 2);
    }

    #[test]
    fn power_variable_latency_multiply() {
        let m = power_like();
        assert_eq!(m.latency_of(BasicOp::IMulSmall), 3);
        assert_eq!(m.latency_of(BasicOp::IMul), 5);
    }

    #[test]
    fn risc1_fma_decomposes() {
        let m = risc1();
        assert!(!m.supports_fma);
        assert_eq!(
            m.expand(BasicOp::Fma).len(),
            2,
            "mul + add on non-FMA machine"
        );
    }

    #[test]
    fn wide4_has_dual_pipes() {
        let m = wide4();
        assert_eq!(m.unit_count(UnitClass::Fxu), 2);
        assert_eq!(m.unit_count(UnitClass::Fpu), 2);
        assert_eq!(m.unit_count(UnitClass::LoadStore), 2);
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("power-like").is_some());
        assert!(by_name("risc1").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn json_roundtrip_power() {
        let m = power_like();
        let back = MachineDesc::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }
}
