//! Language-independent *basic operations* (paper §2.2.1).
//!
//! The first level of the paper's two-level translation maps high-level
//! language expressions onto this fixed, type-specific vocabulary
//! ("integer-add operation, floating-point multiply-add operation, etc.").
//! The second level — the architecture-dependent *atomic operation mapping*
//! — lives in [`crate::MachineDesc`].

use std::fmt;

/// A type-specific, language- and architecture-independent operation.
///
/// Variable-time operations are split into several basic operations so the
/// specialization mapping can pick per-case costs: e.g. the paper notes the
/// RS 6000 integer multiply takes 3 cycles for multipliers in `[-128, 127]`
/// and 5 cycles otherwise, represented here by [`BasicOp::IMulSmall`] vs
/// [`BasicOp::IMul`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[allow(missing_docs)] // variant names are self-describing opcode names
pub enum BasicOp {
    // Integer arithmetic.
    IAdd,
    ISub,
    /// Integer multiply with a small (|x| ≤ 127) known multiplier.
    IMulSmall,
    IMul,
    IDiv,
    IShift,
    ILogic,
    ICmp,
    INeg,
    // Floating point.
    FAdd,
    FSub,
    FMul,
    FDiv,
    /// Fused multiply-add (the paper's "multiply-and-add" powerful instruction).
    Fma,
    FNeg,
    FAbs,
    FCmp,
    FSqrt,
    // Memory.
    LoadInt,
    StoreInt,
    LoadFloat,
    StoreFloat,
    /// Address computation feeding a load/store.
    AddrCalc,
    // Control.
    Branch,
    BranchCond,
    Call,
    Return,
    // Misc.
    Convert,
    Move,
    Nop,
}

impl BasicOp {
    /// Every basic operation; machine descriptions must map all of them.
    pub const ALL: [BasicOp; 29] = [
        BasicOp::IAdd,
        BasicOp::ISub,
        BasicOp::IMulSmall,
        BasicOp::IMul,
        BasicOp::IDiv,
        BasicOp::IShift,
        BasicOp::ILogic,
        BasicOp::ICmp,
        BasicOp::INeg,
        BasicOp::FAdd,
        BasicOp::FSub,
        BasicOp::FMul,
        BasicOp::FDiv,
        BasicOp::Fma,
        BasicOp::FNeg,
        BasicOp::FAbs,
        BasicOp::FCmp,
        BasicOp::FSqrt,
        BasicOp::LoadInt,
        BasicOp::StoreInt,
        BasicOp::LoadFloat,
        BasicOp::StoreFloat,
        BasicOp::AddrCalc,
        BasicOp::Branch,
        BasicOp::BranchCond,
        BasicOp::Call,
        BasicOp::Return,
        BasicOp::Convert,
        BasicOp::Move,
    ];

    /// The stable identifier used in JSON machine descriptions (the Rust
    /// variant name, e.g. `"IMulSmall"`).
    pub fn variant_name(&self) -> &'static str {
        match self {
            BasicOp::IAdd => "IAdd",
            BasicOp::ISub => "ISub",
            BasicOp::IMulSmall => "IMulSmall",
            BasicOp::IMul => "IMul",
            BasicOp::IDiv => "IDiv",
            BasicOp::IShift => "IShift",
            BasicOp::ILogic => "ILogic",
            BasicOp::ICmp => "ICmp",
            BasicOp::INeg => "INeg",
            BasicOp::FAdd => "FAdd",
            BasicOp::FSub => "FSub",
            BasicOp::FMul => "FMul",
            BasicOp::FDiv => "FDiv",
            BasicOp::Fma => "Fma",
            BasicOp::FNeg => "FNeg",
            BasicOp::FAbs => "FAbs",
            BasicOp::FCmp => "FCmp",
            BasicOp::FSqrt => "FSqrt",
            BasicOp::LoadInt => "LoadInt",
            BasicOp::StoreInt => "StoreInt",
            BasicOp::LoadFloat => "LoadFloat",
            BasicOp::StoreFloat => "StoreFloat",
            BasicOp::AddrCalc => "AddrCalc",
            BasicOp::Branch => "Branch",
            BasicOp::BranchCond => "BranchCond",
            BasicOp::Call => "Call",
            BasicOp::Return => "Return",
            BasicOp::Convert => "Convert",
            BasicOp::Move => "Move",
            BasicOp::Nop => "Nop",
        }
    }

    /// Inverse of [`BasicOp::variant_name`], for JSON loading.
    pub fn from_variant_name(name: &str) -> Option<BasicOp> {
        if name == "Nop" {
            return Some(BasicOp::Nop);
        }
        BasicOp::ALL
            .into_iter()
            .find(|op| op.variant_name() == name)
    }

    /// Returns `true` for memory reads.
    pub fn is_load(&self) -> bool {
        matches!(self, BasicOp::LoadInt | BasicOp::LoadFloat)
    }

    /// Returns `true` for memory writes.
    pub fn is_store(&self) -> bool {
        matches!(self, BasicOp::StoreInt | BasicOp::StoreFloat)
    }

    /// Returns `true` for memory accesses of either direction.
    pub fn is_memory(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Returns `true` for floating-point computation (not FP memory ops).
    pub fn is_float_arith(&self) -> bool {
        matches!(
            self,
            BasicOp::FAdd
                | BasicOp::FSub
                | BasicOp::FMul
                | BasicOp::FDiv
                | BasicOp::Fma
                | BasicOp::FNeg
                | BasicOp::FAbs
                | BasicOp::FCmp
                | BasicOp::FSqrt
        )
    }

    /// Returns `true` for control-transfer operations.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            BasicOp::Branch | BasicOp::BranchCond | BasicOp::Call | BasicOp::Return
        )
    }
}

impl fmt::Display for BasicOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BasicOp::IAdd => "iadd",
            BasicOp::ISub => "isub",
            BasicOp::IMulSmall => "imul.s",
            BasicOp::IMul => "imul",
            BasicOp::IDiv => "idiv",
            BasicOp::IShift => "ishift",
            BasicOp::ILogic => "ilogic",
            BasicOp::ICmp => "icmp",
            BasicOp::INeg => "ineg",
            BasicOp::FAdd => "fadd",
            BasicOp::FSub => "fsub",
            BasicOp::FMul => "fmul",
            BasicOp::FDiv => "fdiv",
            BasicOp::Fma => "fma",
            BasicOp::FNeg => "fneg",
            BasicOp::FAbs => "fabs",
            BasicOp::FCmp => "fcmp",
            BasicOp::FSqrt => "fsqrt",
            BasicOp::LoadInt => "load.i",
            BasicOp::StoreInt => "store.i",
            BasicOp::LoadFloat => "load.f",
            BasicOp::StoreFloat => "store.f",
            BasicOp::AddrCalc => "addr",
            BasicOp::Branch => "br",
            BasicOp::BranchCond => "br.cond",
            BasicOp::Call => "call",
            BasicOp::Return => "ret",
            BasicOp::Convert => "cvt",
            BasicOp::Move => "mov",
            BasicOp::Nop => "nop",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_everything_but_nop() {
        // Nop is intentionally excluded: it expands to no atomic operations.
        assert!(!BasicOp::ALL.contains(&BasicOp::Nop));
        assert_eq!(BasicOp::ALL.len(), 29);
    }

    #[test]
    fn classification() {
        assert!(BasicOp::LoadFloat.is_load());
        assert!(BasicOp::StoreInt.is_store());
        assert!(BasicOp::LoadInt.is_memory());
        assert!(!BasicOp::IAdd.is_memory());
        assert!(BasicOp::Fma.is_float_arith());
        assert!(!BasicOp::LoadFloat.is_float_arith());
        assert!(BasicOp::BranchCond.is_control());
        assert!(!BasicOp::FAdd.is_control());
    }

    #[test]
    fn display_names_unique() {
        let mut names: Vec<String> = BasicOp::ALL.iter().map(|o| o.to_string()).collect();
        names.push(BasicOp::Nop.to_string());
        names.sort();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len);
    }

    #[test]
    fn variant_names_roundtrip() {
        for op in BasicOp::ALL.into_iter().chain([BasicOp::Nop]) {
            assert_eq!(BasicOp::from_variant_name(op.variant_name()), Some(op));
        }
        assert_eq!(
            BasicOp::from_variant_name("iadd"),
            None,
            "display names are distinct"
        );
    }
}
