//! Superscalar machine descriptions for the Presage cost model.
//!
//! This crate is the *architecture-dependent* half of the paper's two-level
//! translation (Wang, PLDI 1994 §2.2.1): a [`MachineDesc`] carries the
//! functional-unit inventory (the "bins" of Figure 3), the *atomic
//! operation table* with each operation's noncoverable/coverable costs, and
//! the *atomic operation mapping* from language-independent [`BasicOp`]s.
//! "Adding a new architecture to the cost model is a matter of defining the
//! atomic operation mapping and the atomic operation cost table."
//!
//! Three machines ship predefined in [`machines`]: a POWER-like superscalar
//! matching the paper's examples, a single-pipe scalar RISC, and a 4-wide
//! superscalar. Descriptions serialize to JSON so new targets are data, not
//! code.
//!
//! # Example
//!
//! ```
//! use presage_machine::{machines, BasicOp};
//!
//! let m = machines::power_like();
//! // The paper's example: FP add = 1 noncoverable + 1 coverable cycle.
//! assert_eq!(m.latency_of(BasicOp::FAdd), 2);
//! assert_eq!(m.busy_of(BasicOp::FAdd), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
mod desc;
mod ops;
mod units;

pub mod json;
pub mod machines;

pub use cost::{AtomicOpDef, AtomicOpId, UnitCost};
pub use desc::{
    BackendFlags, CacheParams, MachineBuilder, MachineDesc, MachineError, MachineWarning,
};
pub use ops::BasicOp;
pub use units::{UnitClass, UnitPool};
