//! Machine descriptions: the architecture-dependent half of the paper's
//! two-level translation.
//!
//! "Adding a new architecture to the cost model is a matter of defining the
//! atomic operation mapping and the atomic operation cost table" (§2.2.1).
//! A [`MachineDesc`] bundles exactly those two tables with the functional
//! unit inventory and memory-hierarchy parameters, and serializes to JSON
//! (via the in-tree [`crate::json`] module) so descriptions can be shipped
//! as data files.

use crate::cost::{AtomicOpDef, AtomicOpId, UnitCost};
use crate::json::Json;
use crate::ops::BasicOp;
use crate::units::{UnitClass, UnitPool};
use std::collections::BTreeMap;
use std::fmt;

/// Memory-hierarchy parameters used by the memory access cost model (§2.3).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CacheParams {
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Total cache capacity in bytes.
    pub size_bytes: u64,
    /// Cycles to fill one cache line from memory.
    pub miss_penalty: u32,
    /// Associativity: 0 = fully associative, 1 = direct-mapped, n = n-way.
    pub ways: u32,
    /// Page size in bytes (for TLB cost).
    pub page_bytes: u64,
    /// Number of TLB entries.
    pub tlb_entries: u32,
    /// Cycles per TLB miss.
    pub tlb_penalty: u32,
    /// True when the description's JSON explicitly carried any of the
    /// TLB fields (`page_bytes`, `tlb_entries`, `tlb_penalty`). The
    /// default cost path charges only line misses; the TLB parameters
    /// are charged by the opt-in legacy memory model. Tracking the
    /// declaration lets tooling warn that explicitly-written TLB
    /// numbers are parsed but not charged — see
    /// [`MachineDesc::warnings`].
    pub tlb_declared: bool,
}

impl CacheParams {
    /// Elements of 8 bytes per cache line.
    pub fn elems_per_line(&self) -> u64 {
        (self.line_bytes / 8).max(1)
    }

    /// Number of lines the cache holds.
    pub fn total_lines(&self) -> u64 {
        (self.size_bytes / self.line_bytes.max(1)).max(1)
    }
}

impl Default for CacheParams {
    /// A POWER1-flavoured 64 KiB cache with 128-byte lines.
    fn default() -> Self {
        CacheParams {
            line_bytes: 128,
            size_bytes: 64 * 1024,
            miss_penalty: 16,
            ways: 1,
            page_bytes: 4096,
            tlb_entries: 128,
            tlb_penalty: 30,
            tlb_declared: false,
        }
    }
}

/// Back-end optimization capabilities of the compiler being modeled
/// (§2.2.2: "flags representing the optimization capabilities of the
/// back-end are defined and used for tuning the cost model").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BackendFlags {
    /// Back end performs common-subexpression elimination.
    pub cse: bool,
    /// Back end hoists loop-invariant code.
    pub licm: bool,
    /// Back end eliminates dead code.
    pub dce: bool,
    /// Back end fuses multiply-add pairs when the machine supports FMA.
    pub fma_fusion: bool,
    /// Back end keeps sum-reduction accumulators in registers.
    pub reduction_recognition: bool,
    /// Back end strength-reduces subscript address arithmetic.
    pub strength_reduction: bool,
}

impl Default for BackendFlags {
    fn default() -> Self {
        BackendFlags {
            cse: true,
            licm: true,
            dce: true,
            fma_fusion: true,
            reduction_recognition: true,
            strength_reduction: true,
        }
    }
}

/// A complete machine description.
#[derive(Clone, PartialEq, Debug)]
pub struct MachineDesc {
    name: String,
    units: Vec<UnitPool>,
    atomic_ops: Vec<AtomicOpDef>,
    mapping: BTreeMap<BasicOp, Vec<AtomicOpId>>,
    /// Register-pressure heuristic: after this many outstanding loaded
    /// values the model charges a spill store (§2.2.1: "the effect of the
    /// limited number of registers ... a heuristic that forces a store
    /// after certain number of loads").
    pub register_load_limit: u32,
    /// Whether the architecture has a fused multiply-add.
    pub supports_fma: bool,
    /// Memory-hierarchy parameters. `None` models a perfect cache: every
    /// access hits and predictions contain no memory-cost term (the
    /// behaviour of all descriptions that predate the `cache` section).
    pub cache: Option<CacheParams>,
    /// Modeled back-end capabilities.
    pub backend: BackendFlags,
}

impl MachineDesc {
    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functional unit pools (the bins of Figure 3).
    pub fn units(&self) -> &[UnitPool] {
        &self.units
    }

    /// Number of units in the pool serving `class` (0 if the machine has
    /// no such unit).
    pub fn unit_count(&self, class: UnitClass) -> u8 {
        self.units
            .iter()
            .find(|p| p.class == class)
            .map(|p| p.count)
            .unwrap_or(0)
    }

    /// The atomic operation table.
    pub fn atomic_ops(&self) -> &[AtomicOpDef] {
        &self.atomic_ops
    }

    /// Looks up an atomic operation definition.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids come from this description's
    /// own tables, so this indicates construction-time corruption).
    pub fn atomic(&self, id: AtomicOpId) -> &AtomicOpDef {
        &self.atomic_ops[id.0 as usize]
    }

    /// Expands a basic operation into its atomic operations (the paper's
    /// *atomic operation mapping*). [`BasicOp::Nop`] expands to nothing.
    pub fn expand(&self, op: BasicOp) -> &[AtomicOpId] {
        self.mapping.get(&op).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Result latency of a basic operation: max atomic latency in its
    /// expansion.
    pub fn latency_of(&self, op: BasicOp) -> u32 {
        self.expand(op)
            .iter()
            .map(|id| self.atomic(*id).latency())
            .max()
            .unwrap_or(0)
    }

    /// Total noncoverable work of a basic operation across its expansion.
    pub fn busy_of(&self, op: BasicOp) -> u32 {
        self.expand(op)
            .iter()
            .map(|id| self.atomic(*id).total_busy())
            .sum()
    }

    /// Serializes the description to pretty JSON (the same layout the
    /// shipped `machines/*.json` files use).
    pub fn to_json(&self) -> String {
        let units = self
            .units
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("class".into(), Json::Str(p.class.variant_name().into())),
                    ("count".into(), Json::Num(p.count as f64)),
                ])
            })
            .collect();
        let atomic_ops = self.atomic_ops.iter().map(AtomicOpDef::to_json).collect();
        let mapping = self
            .mapping
            .iter()
            .map(|(op, ids)| {
                let arr = ids.iter().map(|id| Json::Num(id.0 as f64)).collect();
                (op.variant_name().to_string(), Json::Arr(arr))
            })
            .collect();
        let cache = self.cache.as_ref().map(|c| {
            let mut fields = vec![
                ("line_bytes".into(), Json::Num(c.line_bytes as f64)),
                ("size_bytes".into(), Json::Num(c.size_bytes as f64)),
                ("miss_penalty".into(), Json::Num(c.miss_penalty as f64)),
                ("ways".into(), Json::Num(c.ways as f64)),
            ];
            // TLB fields are emitted only when they were declared, so a
            // description that never wrote them round-trips without
            // growing (and without acquiring the uncharged-TLB warning).
            if c.tlb_declared {
                fields.push(("page_bytes".into(), Json::Num(c.page_bytes as f64)));
                fields.push(("tlb_entries".into(), Json::Num(c.tlb_entries as f64)));
                fields.push(("tlb_penalty".into(), Json::Num(c.tlb_penalty as f64)));
            }
            Json::Obj(fields)
        });
        let backend = Json::Obj(vec![
            ("cse".into(), Json::Bool(self.backend.cse)),
            ("licm".into(), Json::Bool(self.backend.licm)),
            ("dce".into(), Json::Bool(self.backend.dce)),
            ("fma_fusion".into(), Json::Bool(self.backend.fma_fusion)),
            (
                "reduction_recognition".into(),
                Json::Bool(self.backend.reduction_recognition),
            ),
            (
                "strength_reduction".into(),
                Json::Bool(self.backend.strength_reduction),
            ),
        ]);
        let mut fields = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("units".into(), Json::Arr(units)),
            ("atomic_ops".into(), Json::Arr(atomic_ops)),
            ("mapping".into(), Json::Obj(mapping)),
            (
                "register_load_limit".into(),
                Json::Num(self.register_load_limit as f64),
            ),
            ("supports_fma".into(), Json::Bool(self.supports_fma)),
        ];
        if let Some(cache) = cache {
            fields.push(("cache".into(), cache));
        }
        fields.push(("backend".into(), backend));
        Json::Obj(fields).to_string_pretty()
    }

    /// Loads a description from JSON, revalidating invariants.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] for malformed JSON or descriptions that
    /// violate the builder's invariants.
    pub fn from_json(json: &str) -> Result<MachineDesc, MachineError> {
        let desc = parse_desc(json).map_err(|issue| match issue {
            ParseIssue::Malformed(e) => MachineError::Parse(e),
            ParseIssue::UnknownCacheField(f) => MachineError::UnknownCacheField(f),
        })?;
        validate(&desc)?;
        Ok(desc)
    }

    /// Non-fatal issues with the description: valid to load, but some
    /// declared parameter will not influence predictions. Tooling (the
    /// server's stats endpoint, the bench suite) surfaces these so a
    /// description author is not silently tuning dead knobs.
    pub fn warnings(&self) -> Vec<MachineWarning> {
        let mut warnings = Vec::new();
        if self.cache.is_some_and(|c| c.tlb_declared) {
            warnings.push(MachineWarning::TlbUncharged);
        }
        warnings
    }
}

/// Internal parse-failure channel: malformed JSON vs. a structurally valid
/// `cache` object with a field the model does not know (surfaced as its own
/// [`MachineError`] variant so callers can distinguish typos from syntax).
enum ParseIssue {
    Malformed(String),
    UnknownCacheField(String),
}

impl From<String> for ParseIssue {
    fn from(e: String) -> Self {
        ParseIssue::Malformed(e)
    }
}

impl From<&str> for ParseIssue {
    fn from(e: &str) -> Self {
        ParseIssue::Malformed(e.to_string())
    }
}

fn parse_desc(json: &str) -> Result<MachineDesc, ParseIssue> {
    let root = Json::parse(json)?;
    let name = root
        .get("name")
        .and_then(Json::as_str)
        .ok_or("machine missing `name`")?
        .to_string();
    let units = root
        .get("units")
        .and_then(Json::as_arr)
        .ok_or("machine missing `units`")?
        .iter()
        .map(|u| {
            let class_name = u
                .get("class")
                .and_then(Json::as_str)
                .ok_or("unit pool missing `class`")?;
            let class = UnitClass::from_variant_name(class_name)
                .ok_or_else(|| format!("unknown unit class `{class_name}`"))?;
            let count = u
                .get("count")
                .and_then(Json::as_u64)
                .ok_or("unit pool missing `count`")?;
            if count > u8::MAX as u64 {
                return Err(format!("unit count {count} out of range"));
            }
            Ok(UnitPool::new(class, count as u8))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let atomic_ops = root
        .get("atomic_ops")
        .and_then(Json::as_arr)
        .ok_or("machine missing `atomic_ops`")?
        .iter()
        .map(AtomicOpDef::from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let mut mapping = BTreeMap::new();
    for (key, ids) in root
        .get("mapping")
        .and_then(Json::as_obj)
        .ok_or("machine missing `mapping`")?
    {
        let op = BasicOp::from_variant_name(key)
            .ok_or_else(|| format!("unknown basic op `{key}` in mapping"))?;
        let ids = ids
            .as_arr()
            .ok_or_else(|| format!("mapping for `{key}` is not an array"))?
            .iter()
            .map(|id| {
                let n = id
                    .as_u64()
                    .ok_or_else(|| format!("bad atomic id for `{key}`"))?;
                if n > u16::MAX as u64 {
                    return Err(format!("atomic id {n} out of range"));
                }
                Ok(AtomicOpId(n as u16))
            })
            .collect::<Result<Vec<_>, String>>()?;
        mapping.insert(op, ids);
    }
    let register_load_limit = root
        .get("register_load_limit")
        .and_then(Json::as_u64)
        .ok_or("machine missing `register_load_limit`")? as u32;
    let supports_fma = root
        .get("supports_fma")
        .and_then(Json::as_bool)
        .ok_or("machine missing `supports_fma`")?;
    // The `cache` section is optional: absent means a perfect cache (the
    // pre-cache-model behaviour), so old descriptions keep their exact
    // predictions. When present, only known fields are accepted.
    let cache = match root.get("cache") {
        None => None,
        Some(cache_obj) => {
            const KNOWN: [&str; 7] = [
                "line_bytes",
                "size_bytes",
                "miss_penalty",
                "ways",
                "page_bytes",
                "tlb_entries",
                "tlb_penalty",
            ];
            let fields = cache_obj.as_obj().ok_or("`cache` is not an object")?;
            if let Some((bad, _)) = fields.iter().find(|(k, _)| !KNOWN.contains(&k.as_str())) {
                return Err(ParseIssue::UnknownCacheField(bad.clone()));
            }
            let required = |field: &str| -> Result<u64, String> {
                cache_obj
                    .get(field)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("cache missing `{field}`"))
            };
            let optional = |field: &str, default: u64| -> Result<u64, String> {
                match cache_obj.get(field) {
                    None => Ok(default),
                    Some(v) => v
                        .as_u64()
                        .ok_or_else(|| format!("cache field `{field}` is not a number")),
                }
            };
            let defaults = CacheParams::default();
            let tlb_declared = ["page_bytes", "tlb_entries", "tlb_penalty"]
                .iter()
                .any(|f| cache_obj.get(f).is_some());
            Some(CacheParams {
                line_bytes: required("line_bytes")?,
                size_bytes: required("size_bytes")?,
                miss_penalty: required("miss_penalty")? as u32,
                ways: optional("ways", defaults.ways as u64)? as u32,
                page_bytes: optional("page_bytes", defaults.page_bytes)?,
                tlb_entries: optional("tlb_entries", defaults.tlb_entries as u64)? as u32,
                tlb_penalty: optional("tlb_penalty", defaults.tlb_penalty as u64)? as u32,
                tlb_declared,
            })
        }
    };
    let backend_obj = root.get("backend").ok_or("machine missing `backend`")?;
    let backend_field = |field: &str| -> Result<bool, String> {
        backend_obj
            .get(field)
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("backend missing `{field}`"))
    };
    let backend = BackendFlags {
        cse: backend_field("cse")?,
        licm: backend_field("licm")?,
        dce: backend_field("dce")?,
        fma_fusion: backend_field("fma_fusion")?,
        reduction_recognition: backend_field("reduction_recognition")?,
        strength_reduction: backend_field("strength_reduction")?,
    };
    Ok(MachineDesc {
        name,
        units,
        atomic_ops,
        mapping,
        register_load_limit,
        supports_fma,
        cache,
        backend,
    })
}

impl fmt::Display for MachineDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (", self.name)?;
        for (i, u) in self.units.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{u}")?;
        }
        write!(f, "; {} atomic ops)", self.atomic_ops.len())
    }
}

/// Non-fatal description issues reported by [`MachineDesc::warnings`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineWarning {
    /// The `cache` section explicitly declares TLB fields (`page_bytes`,
    /// `tlb_entries`, `tlb_penalty`), but the default memory cost model
    /// charges only cache-line misses — the TLB numbers are parsed and
    /// kept, yet contribute nothing to predictions unless the opt-in
    /// legacy whole-hierarchy model is enabled.
    TlbUncharged,
}

impl fmt::Display for MachineWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineWarning::TlbUncharged => write!(
                f,
                "cache section declares TLB fields (page_bytes/tlb_entries/tlb_penalty), \
                 which the default memory cost model parses but does not charge"
            ),
        }
    }
}

/// Errors from building or loading a machine description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// JSON was malformed.
    Parse(String),
    /// A basic operation has no mapping.
    UnmappedOp(BasicOp),
    /// An atomic op id in the mapping is out of range.
    DanglingAtomicId(AtomicOpId),
    /// An atomic operation costs a unit class the machine does not have.
    MissingUnit {
        /// Name of the offending atomic operation.
        op: String,
        /// The missing unit class.
        class: UnitClass,
    },
    /// A unit pool is declared with zero units.
    EmptyPool(UnitClass),
    /// The same unit class is declared twice.
    DuplicatePool(UnitClass),
    /// Two atomic operations share one name (mappings would be ambiguous
    /// to human readers and to the inference tooling).
    DuplicateAtomic(String),
    /// The `cache` section contains a field the model does not know.
    UnknownCacheField(String),
    /// The `cache` section is present but geometrically inconsistent.
    BadCache(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Parse(e) => write!(f, "malformed machine description: {e}"),
            MachineError::UnmappedOp(op) => {
                write!(f, "basic operation `{op}` has no atomic mapping")
            }
            MachineError::DanglingAtomicId(id) => {
                write!(f, "mapping references unknown atomic op {id}")
            }
            MachineError::MissingUnit { op, class } => {
                write!(
                    f,
                    "atomic op `{op}` costs unit {class} which the machine lacks"
                )
            }
            MachineError::EmptyPool(c) => write!(f, "unit pool {c} has zero units"),
            MachineError::DuplicatePool(c) => write!(f, "unit pool {c} declared twice"),
            MachineError::DuplicateAtomic(name) => {
                write!(f, "atomic op `{name}` declared twice")
            }
            MachineError::UnknownCacheField(field) => {
                write!(f, "unknown cache field `{field}`")
            }
            MachineError::BadCache(why) => write!(f, "bad cache geometry: {why}"),
        }
    }
}

impl std::error::Error for MachineError {}

fn validate(desc: &MachineDesc) -> Result<(), MachineError> {
    let mut seen = Vec::new();
    for pool in &desc.units {
        if pool.count == 0 {
            return Err(MachineError::EmptyPool(pool.class));
        }
        if seen.contains(&pool.class) {
            return Err(MachineError::DuplicatePool(pool.class));
        }
        seen.push(pool.class);
    }
    for op in BasicOp::ALL {
        if !desc.mapping.contains_key(&op) {
            return Err(MachineError::UnmappedOp(op));
        }
    }
    for ids in desc.mapping.values() {
        for id in ids {
            if id.0 as usize >= desc.atomic_ops.len() {
                return Err(MachineError::DanglingAtomicId(*id));
            }
        }
    }
    for aop in &desc.atomic_ops {
        for cost in &aop.costs {
            if desc.unit_count(cost.class) == 0 {
                return Err(MachineError::MissingUnit {
                    op: aop.name.clone(),
                    class: cost.class,
                });
            }
        }
    }
    let mut names: Vec<&str> = Vec::with_capacity(desc.atomic_ops.len());
    for aop in &desc.atomic_ops {
        if names.contains(&aop.name.as_str()) {
            return Err(MachineError::DuplicateAtomic(aop.name.clone()));
        }
        names.push(&aop.name);
    }
    if let Some(c) = &desc.cache {
        let bad = |why: &str| Err(MachineError::BadCache(why.to_string()));
        if c.line_bytes == 0 || c.line_bytes % 8 != 0 {
            return bad("line_bytes must be a positive multiple of 8");
        }
        if c.size_bytes < c.line_bytes || c.size_bytes % c.line_bytes != 0 {
            return bad("size_bytes must be a positive multiple of line_bytes");
        }
        if c.ways != 0 && (c.size_bytes / c.line_bytes) % c.ways as u64 != 0 {
            return bad("ways must divide the line count");
        }
    }
    Ok(())
}

/// Incremental builder for [`MachineDesc`].
///
/// # Examples
///
/// ```
/// use presage_machine::{MachineBuilder, UnitClass, UnitCost, BasicOp};
///
/// let mut b = MachineBuilder::new("toy");
/// b.unit(UnitClass::Alu, 1);
/// let add = b.atomic("add", vec![UnitCost::new(UnitClass::Alu, 1, 0)]);
/// b.map_all_to(add); // map every basic op to `add` for a trivial model
/// let machine = b.build().unwrap();
/// assert_eq!(machine.latency_of(BasicOp::IAdd), 1);
/// ```
#[derive(Debug)]
pub struct MachineBuilder {
    name: String,
    units: Vec<UnitPool>,
    atomic_ops: Vec<AtomicOpDef>,
    mapping: BTreeMap<BasicOp, Vec<AtomicOpId>>,
    register_load_limit: u32,
    supports_fma: bool,
    cache: Option<CacheParams>,
    backend: BackendFlags,
}

impl MachineBuilder {
    /// Starts a description with the given machine name. No `cache`
    /// section is attached by default: the machine models a perfect cache
    /// until [`MachineBuilder::cache`] is called.
    pub fn new(name: impl Into<String>) -> MachineBuilder {
        MachineBuilder {
            name: name.into(),
            units: Vec::new(),
            atomic_ops: Vec::new(),
            mapping: BTreeMap::new(),
            register_load_limit: 24,
            supports_fma: false,
            cache: None,
            backend: BackendFlags::default(),
        }
    }

    /// Declares a pool of `count` units of `class`.
    pub fn unit(&mut self, class: UnitClass, count: u8) -> &mut Self {
        self.units.push(UnitPool::new(class, count));
        self
    }

    /// Adds an atomic operation, returning its id for use in mappings.
    pub fn atomic(&mut self, name: impl Into<String>, costs: Vec<UnitCost>) -> AtomicOpId {
        let id = AtomicOpId(self.atomic_ops.len() as u16);
        self.atomic_ops.push(AtomicOpDef::new(name, costs));
        id
    }

    /// Maps a basic operation to a sequence of atomic operations.
    pub fn map(&mut self, op: BasicOp, atoms: impl IntoIterator<Item = AtomicOpId>) -> &mut Self {
        self.mapping.insert(op, atoms.into_iter().collect());
        self
    }

    /// Maps every not-yet-mapped basic operation to the single atomic op
    /// (useful for toy machines and tests).
    pub fn map_all_to(&mut self, atom: AtomicOpId) -> &mut Self {
        for op in BasicOp::ALL {
            self.mapping.entry(op).or_insert_with(|| vec![atom]);
        }
        self
    }

    /// Sets the register-pressure spill threshold.
    pub fn register_load_limit(&mut self, n: u32) -> &mut Self {
        self.register_load_limit = n;
        self
    }

    /// Declares FMA support.
    pub fn supports_fma(&mut self, yes: bool) -> &mut Self {
        self.supports_fma = yes;
        self
    }

    /// Sets memory-hierarchy parameters (enables the memory cost model).
    pub fn cache(&mut self, cache: CacheParams) -> &mut Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the modeled back-end capabilities.
    pub fn backend(&mut self, flags: BackendFlags) -> &mut Self {
        self.backend = flags;
        self
    }

    /// Validates and produces the machine description.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] if a basic op is unmapped, an atomic id
    /// dangles, a cost references a missing unit, or a pool is empty or
    /// duplicated.
    pub fn build(&self) -> Result<MachineDesc, MachineError> {
        let desc = MachineDesc {
            name: self.name.clone(),
            units: self.units.clone(),
            atomic_ops: self.atomic_ops.clone(),
            mapping: self.mapping.clone(),
            register_load_limit: self.register_load_limit,
            supports_fma: self.supports_fma,
            cache: self.cache,
            backend: self.backend,
        };
        validate(&desc)?;
        Ok(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_builder() -> MachineBuilder {
        let mut b = MachineBuilder::new("toy");
        b.unit(UnitClass::Alu, 1);
        let add = b.atomic("add", vec![UnitCost::new(UnitClass::Alu, 1, 0)]);
        b.map_all_to(add);
        b
    }

    #[test]
    fn builder_happy_path() {
        let m = toy_builder().build().unwrap();
        assert_eq!(m.name(), "toy");
        assert_eq!(m.unit_count(UnitClass::Alu), 1);
        assert_eq!(m.unit_count(UnitClass::Fpu), 0);
        assert_eq!(m.expand(BasicOp::IAdd).len(), 1);
        assert_eq!(m.expand(BasicOp::Nop).len(), 0, "nop expands to nothing");
    }

    #[test]
    fn unmapped_op_rejected() {
        let mut b = MachineBuilder::new("bad");
        b.unit(UnitClass::Alu, 1);
        let add = b.atomic("add", vec![UnitCost::new(UnitClass::Alu, 1, 0)]);
        b.map(BasicOp::IAdd, [add]);
        match b.build() {
            Err(MachineError::UnmappedOp(_)) => {}
            other => panic!("expected UnmappedOp, got {other:?}"),
        }
    }

    #[test]
    fn dangling_atomic_rejected() {
        let mut b = toy_builder();
        b.map(BasicOp::IAdd, [AtomicOpId(99)]);
        assert_eq!(
            b.build().unwrap_err(),
            MachineError::DanglingAtomicId(AtomicOpId(99))
        );
    }

    #[test]
    fn missing_unit_rejected() {
        let mut b = MachineBuilder::new("bad");
        b.unit(UnitClass::Alu, 1);
        let f = b.atomic("fadd", vec![UnitCost::new(UnitClass::Fpu, 1, 1)]);
        b.map_all_to(f);
        match b.build() {
            Err(MachineError::MissingUnit { class, .. }) => assert_eq!(class, UnitClass::Fpu),
            other => panic!("expected MissingUnit, got {other:?}"),
        }
    }

    #[test]
    fn empty_pool_rejected() {
        let mut b = toy_builder();
        b.unit(UnitClass::Fpu, 0);
        assert_eq!(
            b.build().unwrap_err(),
            MachineError::EmptyPool(UnitClass::Fpu)
        );
    }

    #[test]
    fn duplicate_pool_rejected() {
        let mut b = toy_builder();
        b.unit(UnitClass::Alu, 2);
        assert_eq!(
            b.build().unwrap_err(),
            MachineError::DuplicatePool(UnitClass::Alu)
        );
    }

    #[test]
    fn json_roundtrip() {
        let m = toy_builder().build().unwrap();
        assert!(m.cache.is_none(), "builder default is a perfect cache");
        let json = m.to_json();
        assert!(
            !json.contains("\"cache\""),
            "perfect-cache machines serialize without a cache section"
        );
        let back = MachineDesc::from_json(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn json_roundtrip_with_cache() {
        let mut b = toy_builder();
        b.cache(CacheParams {
            line_bytes: 64,
            size_bytes: 32 * 1024,
            miss_penalty: 20,
            ways: 2,
            ..CacheParams::default()
        });
        let m = b.build().unwrap();
        let json = m.to_json();
        assert!(json.contains("\"cache\""));
        let back = MachineDesc::from_json(&json).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.cache.unwrap().ways, 2);
    }

    #[test]
    fn declared_tlb_fields_warn_and_round_trip() {
        let mut b = toy_builder();
        b.cache(CacheParams::default());
        let quiet = b.build().unwrap();
        assert!(quiet.warnings().is_empty(), "defaulted TLB is silent");
        let json = quiet.to_json();
        assert!(
            !json.contains("tlb_entries"),
            "undeclared TLB fields are not serialized"
        );

        let mut b = toy_builder();
        b.cache(CacheParams {
            tlb_entries: 64,
            tlb_declared: true,
            ..CacheParams::default()
        });
        let loud = b.build().unwrap();
        assert_eq!(loud.warnings(), vec![MachineWarning::TlbUncharged]);
        let json = loud.to_json();
        assert!(json.contains("tlb_entries"));
        let back = MachineDesc::from_json(&json).unwrap();
        assert_eq!(loud, back, "declared TLB fields round-trip");
        assert_eq!(back.warnings(), vec![MachineWarning::TlbUncharged]);
    }

    #[test]
    fn duplicate_atomic_name_rejected() {
        let mut b = toy_builder();
        b.atomic("add", vec![UnitCost::new(UnitClass::Alu, 1, 0)]);
        assert_eq!(
            b.build().unwrap_err(),
            MachineError::DuplicateAtomic("add".into())
        );
    }

    #[test]
    fn unknown_cache_field_rejected() {
        let mut b = toy_builder();
        b.cache(CacheParams::default());
        let json = b.build().unwrap().to_json().replace("\"ways\"", "\"waze\"");
        assert_eq!(
            MachineDesc::from_json(&json).unwrap_err(),
            MachineError::UnknownCacheField("waze".into())
        );
    }

    #[test]
    fn bad_cache_geometry_rejected() {
        for (line, size, ways) in [
            (0u64, 1024u64, 1u32),
            (100, 1024, 1),
            (128, 64, 1),
            (128, 1024, 3),
        ] {
            let mut b = toy_builder();
            b.cache(CacheParams {
                line_bytes: line,
                size_bytes: size,
                ways,
                ..CacheParams::default()
            });
            assert!(
                matches!(b.build(), Err(MachineError::BadCache(_))),
                "line {line} size {size} ways {ways} must be rejected"
            );
        }
    }

    #[test]
    fn cache_optional_fields_default() {
        let json = r#"{"line_bytes": 64, "size_bytes": 8192, "miss_penalty": 10}"#;
        let mut b = toy_builder();
        b.cache(CacheParams::default());
        let full = b.build().unwrap().to_json();
        // Swap the serialized cache object for a minimal one; parsing must
        // fill the optional fields with defaults.
        let start = full.find("\"cache\": {").unwrap();
        let end = full[start..].find('}').unwrap() + start + 1;
        let minimal = format!("{}\"cache\": {}{}", &full[..start], json, &full[end..]);
        let m = MachineDesc::from_json(&minimal).unwrap();
        let c = m.cache.unwrap();
        assert_eq!((c.line_bytes, c.size_bytes, c.miss_penalty), (64, 8192, 10));
        assert_eq!(c.ways, CacheParams::default().ways);
        assert_eq!(c.page_bytes, CacheParams::default().page_bytes);
    }

    #[test]
    fn json_revalidates() {
        let m = toy_builder().build().unwrap();
        let json = m.to_json().replace("\"count\": 1", "\"count\": 0");
        assert!(MachineDesc::from_json(&json).is_err());
    }

    #[test]
    fn latency_and_busy_queries() {
        let mut b = MachineBuilder::new("m");
        b.unit(UnitClass::Fpu, 1).unit(UnitClass::Fxu, 1);
        let fadd = b.atomic("fadd", vec![UnitCost::new(UnitClass::Fpu, 1, 1)]);
        let st = b.atomic(
            "stfd",
            vec![
                UnitCost::new(UnitClass::Fpu, 1, 1),
                UnitCost::new(UnitClass::Fxu, 1, 0),
            ],
        );
        b.map_all_to(fadd);
        b.map(BasicOp::StoreFloat, [st]);
        let m = b.build().unwrap();
        assert_eq!(m.latency_of(BasicOp::FAdd), 2);
        assert_eq!(m.busy_of(BasicOp::FAdd), 1);
        assert_eq!(m.busy_of(BasicOp::StoreFloat), 2);
    }
}
