//! Low-level operation streams produced by the instruction translation
//! module.
//!
//! A [`BlockIr`] is the unit the cost model consumes: a straight-line list
//! of [`Op`]s over [`BasicOp`]s, with SSA-style value dependences and
//! explicit memory-ordering edges. The placement algorithm (the paper's
//! "Tetris" model) and the reference simulator both schedule these streams.

use presage_frontend::fold::{encode_expr, encode_str};
use presage_frontend::Expr;
use presage_machine::BasicOp;
use std::fmt;

/// Identity of an interned block in the process-wide arena (see
/// [`crate::intern`]).
///
/// Ids are never reused: equal ids imply identical content *forever*,
/// even after the arena entry is reclaimed by an epoch advance, so
/// downstream memo tables can key on the id — an O(1) compare — instead
/// of rehashing the whole block on every lookup. The converse holds only
/// within a reclamation window: content re-interned after its entry was
/// retired receives a fresh id (a duplicate memo entry, never a
/// collision).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Index of an operation within its block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub u32);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Index of a value within its block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ValueId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// How a value comes into existence.
#[derive(Clone, PartialEq, Debug)]
pub enum ValueDef {
    /// An integer immediate (free: folded into the consuming instruction).
    IntConst(i64),
    /// A floating constant (materialized by a constant-pool load elsewhere).
    RealConst(f64),
    /// A value already in a register on block entry (incoming scalar,
    /// hoisted invariant, or loop induction variable).
    External(String),
    /// Produced by an operation of this block.
    Op(OpId),
}

impl ValueDef {
    /// Returns `true` if the value is available at block entry (time 0).
    pub fn is_entry(&self) -> bool {
        !matches!(self, ValueDef::Op(_))
    }
}

/// A reference to array memory, kept for dependence disambiguation and the
/// memory cost model.
#[derive(Clone, PartialEq, Debug)]
pub struct MemRef {
    /// The array name.
    pub array: String,
    /// Subscript expressions (source-level, innermost first).
    pub subscripts: Vec<Expr>,
}

impl MemRef {
    /// A canonical textual key for CSE and dependence tests.
    pub fn key(&self) -> String {
        use std::fmt::Write;
        let mut s = self.array.clone();
        for sub in &self.subscripts {
            let _ = write!(s, "[{sub}]");
        }
        s
    }
}

/// One low-level operation.
#[derive(Clone, PartialEq, Debug)]
pub struct Op {
    /// The basic (machine-independent) operation.
    pub basic: BasicOp,
    /// Value arguments (flow dependences).
    pub args: Vec<ValueId>,
    /// Produced value, if any.
    pub result: Option<ValueId>,
    /// Memory reference for loads/stores.
    pub mem: Option<MemRef>,
    /// Additional ordering edges (memory dependences).
    pub extra_deps: Vec<OpId>,
    /// Callee name for [`BasicOp::Call`] ops.
    pub callee: Option<String>,
}

impl Op {
    /// A pure computational op.
    pub fn compute(basic: BasicOp, args: Vec<ValueId>, result: ValueId) -> Op {
        Op {
            basic,
            args,
            result: Some(result),
            mem: None,
            extra_deps: Vec::new(),
            callee: None,
        }
    }
}

/// A straight-line block of operations.
#[derive(Clone, Debug, Default)]
pub struct BlockIr {
    /// Value definitions, indexed by [`ValueId`].
    pub values: Vec<ValueDef>,
    /// Operations in original program order.
    pub ops: Vec<Op>,
    /// Arena id from [`crate::intern`], cleared on any mutation so a
    /// stale id can never outlive the content it names. Excluded from
    /// equality: two blocks are the same block by content alone.
    pub(crate) interned: Option<BlockId>,
}

impl PartialEq for BlockIr {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values && self.ops == other.ops
    }
}

impl BlockIr {
    /// An empty block.
    pub fn new() -> BlockIr {
        BlockIr::default()
    }

    /// Returns `true` if the block contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// The interned arena id, if this block has been interned (see
    /// [`crate::intern::intern_block`]) and not mutated since.
    pub fn interned_id(&self) -> Option<BlockId> {
        self.interned
    }

    pub(crate) fn set_interned(&mut self, id: BlockId) {
        self.interned = Some(id);
    }

    /// Registers a new value definition.
    pub fn add_value(&mut self, def: ValueDef) -> ValueId {
        self.interned = None;
        let id = ValueId(self.values.len() as u32);
        self.values.push(def);
        id
    }

    /// Appends an operation, wiring its `result` value if present.
    pub fn push_op(&mut self, op: Op) -> OpId {
        self.interned = None;
        let id = OpId(self.ops.len() as u32);
        if let Some(v) = op.result {
            // Keep the value table consistent even for pre-allocated values.
            if let Some(slot) = self.values.get_mut(v.0 as usize) {
                *slot = ValueDef::Op(id);
            }
        }
        self.ops.push(op);
        id
    }

    /// Emits an op that produces a fresh value, returning that value.
    pub fn emit(&mut self, basic: BasicOp, args: Vec<ValueId>) -> ValueId {
        let v = self.add_value(ValueDef::External(String::new()));
        self.push_op(Op::compute(basic, args, v));
        v
    }

    /// The definition of a value.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this block.
    pub fn value(&self, id: ValueId) -> &ValueDef {
        &self.values[id.0 as usize]
    }

    /// The op producing `value`, if it is block-local.
    pub fn producer(&self, value: ValueId) -> Option<OpId> {
        match self.value(value) {
            ValueDef::Op(id) => Some(*id),
            _ => None,
        }
    }

    /// All predecessor ops of `op` (flow args + memory edges).
    pub fn deps_of(&self, op: &Op) -> Vec<OpId> {
        let mut out: Vec<OpId> = op.args.iter().filter_map(|v| self.producer(*v)).collect();
        out.extend(op.extra_deps.iter().copied());
        out.sort();
        out.dedup();
        out
    }

    /// Builds the block's dependence adjacency in CSR form.
    ///
    /// Convenience for [`DepCsr::rebuild`] with a fresh structure; callers
    /// on a hot path should hold a [`DepCsr`] and rebuild it in place to
    /// reuse its allocations.
    pub fn dep_csr(&self) -> DepCsr {
        let mut csr = DepCsr::new();
        csr.rebuild(self);
        csr
    }

    /// Counts operations of each basic kind.
    pub fn op_histogram(&self) -> std::collections::BTreeMap<BasicOp, usize> {
        let mut h = std::collections::BTreeMap::new();
        for op in &self.ops {
            *h.entry(op.basic).or_insert(0) += 1;
        }
        h
    }

    /// All memory references in the block (loads and stores).
    pub fn mem_refs(&self) -> impl Iterator<Item = (&Op, &MemRef)> {
        self.ops
            .iter()
            .filter_map(|o| o.mem.as_ref().map(|m| (o, m)))
    }

    /// Appends an unambiguous byte encoding of the block's content
    /// (values, ops, memory refs, callees — everything [`PartialEq`]
    /// compares) to `buf`. This is the canonical serialization behind
    /// both the interner's content addressing and the scheduling memo's
    /// fallback keys for un-interned blocks.
    pub fn encode_content(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.values.len() as u32).to_le_bytes());
        for v in &self.values {
            match v {
                ValueDef::IntConst(i) => {
                    buf.push(0);
                    buf.extend_from_slice(&i.to_le_bytes());
                }
                ValueDef::RealConst(x) => {
                    buf.push(1);
                    buf.extend_from_slice(&x.to_bits().to_le_bytes());
                }
                ValueDef::External(s) => {
                    buf.push(2);
                    encode_str(buf, s);
                }
                ValueDef::Op(id) => {
                    buf.push(3);
                    buf.extend_from_slice(&id.0.to_le_bytes());
                }
            }
        }
        buf.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for op in &self.ops {
            buf.extend_from_slice(&(op.basic as u32).to_le_bytes());
            buf.extend_from_slice(&(op.args.len() as u32).to_le_bytes());
            for a in &op.args {
                buf.extend_from_slice(&a.0.to_le_bytes());
            }
            match op.result {
                None => buf.push(0),
                Some(r) => {
                    buf.push(1);
                    buf.extend_from_slice(&r.0.to_le_bytes());
                }
            }
            buf.extend_from_slice(&(op.extra_deps.len() as u32).to_le_bytes());
            for d in &op.extra_deps {
                buf.extend_from_slice(&d.0.to_le_bytes());
            }
            match &op.callee {
                None => buf.push(0),
                Some(c) => {
                    buf.push(1);
                    encode_str(buf, c);
                }
            }
            match &op.mem {
                None => buf.push(0),
                Some(m) => {
                    buf.push(1);
                    encode_str(buf, &m.array);
                    buf.extend_from_slice(&(m.subscripts.len() as u32).to_le_bytes());
                    for sub in &m.subscripts {
                        encode_expr(buf, sub);
                    }
                }
            }
        }
    }
}

/// Dependence adjacency of a [`BlockIr`] in compressed sparse row form.
///
/// [`BlockIr::deps_of`] allocates a fresh `Vec` per query, which dominates
/// the placement engine's per-op cost on large blocks. `DepCsr` packs every
/// op's predecessor list into two flat arrays — `offsets[i]..offsets[i+1]`
/// indexes op `i`'s slice of `edges` — so a whole block's dependences are
/// computed with two allocations total, and a long-lived instance reuses
/// even those across [`DepCsr::rebuild`] calls.
///
/// Each op's edge slice is sorted and deduplicated, exactly matching the
/// `Vec` that [`BlockIr::deps_of`] returns for the same op.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DepCsr {
    /// `offsets[i]..offsets[i+1]` bounds op `i`'s slice of `edges`.
    offsets: Vec<u32>,
    /// Concatenated predecessor lists, each sorted and deduplicated.
    edges: Vec<OpId>,
}

impl DepCsr {
    /// An empty adjacency (zero ops).
    pub fn new() -> DepCsr {
        DepCsr {
            offsets: vec![0],
            edges: Vec::new(),
        }
    }

    /// Recomputes the adjacency for `block`, reusing existing storage.
    pub fn rebuild(&mut self, block: &BlockIr) {
        self.offsets.clear();
        self.edges.clear();
        self.offsets.reserve(block.ops.len() + 1);
        self.offsets.push(0);
        for op in &block.ops {
            let mark = self.edges.len();
            for v in &op.args {
                if let Some(p) = block.producer(*v) {
                    self.edges.push(p);
                }
            }
            self.edges.extend(op.extra_deps.iter().copied());
            self.edges[mark..].sort_unstable();
            // Dedup the tail in place.
            let mut w = mark;
            for r in mark..self.edges.len() {
                if w == mark || self.edges[r] != self.edges[w - 1] {
                    self.edges[w] = self.edges[r];
                    w += 1;
                }
            }
            self.edges.truncate(w);
            self.offsets.push(self.edges.len() as u32);
        }
    }

    /// Number of ops covered by the adjacency.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the adjacency covers no ops.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Predecessors of op `i`, sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for the block last rebuilt.
    pub fn deps(&self, i: usize) -> &[OpId] {
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

impl fmt::Display for BlockIr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.ops.iter().enumerate() {
            write!(f, "%{i:<3} {}", op.basic)?;
            if let Some(m) = &op.mem {
                write!(f, " {}", m.key())?;
            }
            if let Some(c) = &op.callee {
                write!(f, " @{c}")?;
            }
            if !op.args.is_empty() {
                write!(f, " (")?;
                for (j, a) in op.args.iter().enumerate() {
                    if j > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
            }
            if let Some(r) = op.result {
                write!(f, " -> {r}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_deps() {
        let mut b = BlockIr::new();
        let c1 = b.add_value(ValueDef::IntConst(1));
        let x = b.add_value(ValueDef::External("x".into()));
        let sum = b.emit(BasicOp::IAdd, vec![c1, x]);
        let dbl = b.emit(BasicOp::IAdd, vec![sum, sum]);
        assert_eq!(b.len(), 2);
        let dbl_op = b.producer(dbl).unwrap();
        assert_eq!(
            b.deps_of(&b.ops[dbl_op.0 as usize]),
            vec![b.producer(sum).unwrap()]
        );
        // The first op has no block-local deps.
        assert!(b.deps_of(&b.ops[0]).is_empty());
    }

    #[test]
    fn entry_values() {
        assert!(ValueDef::IntConst(3).is_entry());
        assert!(ValueDef::External("n".into()).is_entry());
        assert!(!ValueDef::Op(OpId(0)).is_entry());
    }

    #[test]
    fn extra_deps_merge() {
        let mut b = BlockIr::new();
        let v = b.add_value(ValueDef::IntConst(0));
        let st = b.push_op(Op {
            basic: BasicOp::StoreInt,
            args: vec![v],
            result: None,
            mem: Some(MemRef {
                array: "a".into(),
                subscripts: vec![],
            }),
            extra_deps: vec![],
            callee: None,
        });
        let ld_v = b.add_value(ValueDef::External(String::new()));
        b.push_op(Op {
            basic: BasicOp::LoadInt,
            args: vec![],
            result: Some(ld_v),
            mem: Some(MemRef {
                array: "a".into(),
                subscripts: vec![],
            }),
            extra_deps: vec![st],
            callee: None,
        });
        assert_eq!(b.deps_of(&b.ops[1]), vec![st]);
    }

    #[test]
    fn histogram() {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        b.emit(BasicOp::FAdd, vec![x, x]);
        b.emit(BasicOp::FAdd, vec![x, x]);
        b.emit(BasicOp::FMul, vec![x, x]);
        let h = b.op_histogram();
        assert_eq!(h[&BasicOp::FAdd], 2);
        assert_eq!(h[&BasicOp::FMul], 1);
    }

    #[test]
    fn memref_key() {
        use presage_frontend::Expr;
        let m = MemRef {
            array: "a".into(),
            subscripts: vec![Expr::Var("i".into()), Expr::IntLit(2)],
        };
        assert_eq!(m.key(), "a[i][2]");
    }

    #[test]
    fn dep_csr_matches_deps_of() {
        let mut b = BlockIr::new();
        let c1 = b.add_value(ValueDef::IntConst(1));
        let x = b.add_value(ValueDef::External("x".into()));
        let sum = b.emit(BasicOp::IAdd, vec![c1, x]);
        let dbl = b.emit(BasicOp::IAdd, vec![sum, sum]);
        let st = b.push_op(Op {
            basic: BasicOp::StoreInt,
            args: vec![dbl],
            result: None,
            mem: Some(MemRef {
                array: "a".into(),
                subscripts: vec![],
            }),
            extra_deps: vec![OpId(0)],
            callee: None,
        });
        let ld_v = b.add_value(ValueDef::External(String::new()));
        b.push_op(Op {
            basic: BasicOp::LoadInt,
            args: vec![],
            result: Some(ld_v),
            mem: Some(MemRef {
                array: "a".into(),
                subscripts: vec![],
            }),
            extra_deps: vec![st, st],
            callee: None,
        });
        let csr = b.dep_csr();
        assert_eq!(csr.len(), b.len());
        for (i, op) in b.ops.iter().enumerate() {
            assert_eq!(csr.deps(i), b.deps_of(op).as_slice(), "op {i}");
        }
        // Rebuild in place on a different block reuses storage correctly.
        let mut b2 = BlockIr::new();
        let y = b2.add_value(ValueDef::External("y".into()));
        b2.emit(BasicOp::FAdd, vec![y, y]);
        let mut csr2 = csr.clone();
        csr2.rebuild(&b2);
        assert_eq!(csr2.len(), 1);
        assert!(csr2.deps(0).is_empty());
    }

    #[test]
    fn display_smoke() {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        b.emit(BasicOp::FAdd, vec![x, x]);
        let text = b.to_string();
        assert!(text.contains("fadd"));
        assert!(text.contains("v1"));
    }
}
