//! Instruction translation for the Presage performance predictor.
//!
//! Implements the paper's two-level translation (Wang, PLDI 1994, §2.2):
//! the *operation specialization mapping* (language-dependent,
//! architecture-independent) turns mini-Fortran expressions into
//! [`presage_machine::BasicOp`] streams, and the machine's *atomic
//! operation mapping* costs them later. The translator imitates the
//! back-end optimizations that would otherwise distort source-level
//! estimates: CSE, loop-invariant code motion (one-time vs. per-iteration
//! bins), FMA fusion, sum-reduction register allocation, strength-reduced
//! addressing, a register-pressure spill heuristic, and dead-code
//! elimination.
//!
//! The output is a [`ProgramIr`] tree mirroring the source control
//! structure, whose straight-line [`BlockIr`] leaves feed the placement
//! cost model and the reference simulator.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ir;
mod program;
mod translate;

pub mod intern;
pub mod passes;

pub use ir::{BlockId, BlockIr, DepCsr, MemRef, Op, OpId, ValueDef, ValueId};
pub use program::{ArrayDecl, IfIr, IrNode, LoopIr, ProgramIr};
pub use translate::{translate, TranslateError};
