//! The instruction translation module (paper §2.2).
//!
//! Converts mini-Fortran statements into streams of [`BasicOp`]s while
//! *imitating the compiler back-end* so that source-level cost estimates
//! match the code that will eventually be generated: common-subexpression
//! elimination (hash-consing on canonical source keys), loop-invariant code
//! motion into loop preheaders, multiply-add fusion, sum-reduction
//! register allocation, strength-reduced addressing, the
//! store-after-N-loads register-pressure heuristic, and dead-code
//! elimination (in [`crate::passes`]).
//!
//! Scalars are modeled as register-resident (the paper's xlf reference
//! keeps named scalars in registers in hot code); array accesses emit
//! address arithmetic plus load/store operations with conservative memory
//! dependence edges.

use crate::ir::{BlockIr, MemRef, Op, OpId, ValueDef, ValueId};
use crate::program::{IfIr, IrNode, LoopIr, ProgramIr};
use presage_frontend::analysis::{affine_form, assigned_names, is_invariant};
use presage_frontend::sema::{type_of_expr, SymbolTable};
use presage_frontend::{BaseType, BinOp, Expr, Intrinsic, Span, Stmt, Subroutine, UnOp};
use presage_machine::{BasicOp, MachineDesc};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors from translation.
#[derive(Clone, PartialEq, Debug)]
pub struct TranslateError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translate error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for TranslateError {}

/// Translates a (semantically checked) subroutine into a structured
/// operation tree for the given machine.
///
/// # Errors
///
/// Returns [`TranslateError`] for expressions the model cannot cost (none
/// in the supported language today; the error channel guards future
/// extensions).
///
/// # Examples
///
/// ```
/// use presage_frontend::{parse, sema};
/// use presage_machine::machines;
/// use presage_translate::translate;
///
/// let prog = parse(
///     "subroutine axpy(y, x, a, n)
///        real y(n), x(n), a
///        integer i, n
///        do i = 1, n
///          y(i) = y(i) + a * x(i)
///        end do
///      end",
/// ).unwrap();
/// let sub = &prog.units[0];
/// let symbols = sema::analyze(sub).unwrap();
/// let ir = translate(sub, &symbols, &machines::power_like()).unwrap();
/// // The loop body fuses the multiply-add into a single FMA.
/// let inner = ir.innermost_block().unwrap();
/// assert!(inner.ops.iter().any(|o| o.basic == presage_machine::BasicOp::Fma));
/// ```
pub fn translate(
    sub: &Subroutine,
    symbols: &SymbolTable,
    machine: &MachineDesc,
) -> Result<ProgramIr, TranslateError> {
    let ctx = Ctx { machine, symbols };
    let root = ctx.nodes(&sub.body, None)?;
    // Declared arrays, sorted by name so the layout downstream consumers
    // derive from this list is deterministic (the symbol table iterates
    // in hash order).
    let mut arrays: Vec<crate::program::ArrayDecl> = symbols
        .iter()
        .filter(|s| s.is_array())
        .map(|s| crate::program::ArrayDecl {
            name: s.name.clone(),
            dims: s.dims.clone(),
        })
        .collect();
    arrays.sort_by(|a, b| a.name.cmp(&b.name));
    let mut ir = ProgramIr {
        name: sub.name.clone(),
        params: sub.params.clone(),
        arrays,
        root,
    };
    // Canonical operation ordering before interning: commuted operand
    // orders translate to isomorphic dependence graphs, and this pass
    // makes them byte-for-byte the same op sequence, so the (order
    // sensitive) greedy placement predicts one cost per structural class
    // and hash-consing below merges what the e-graph considers equal.
    ir.visit_blocks_mut(&mut |b| {
        let owned = std::mem::take(b);
        *b = crate::passes::canonical_order(owned);
    });
    // Hash-cons every block into the process-wide arena so downstream
    // memo keys (scheduling memo, steady-state prober) become id compares
    // instead of per-lookup content rehashes.
    crate::intern::intern_program(&mut ir);
    Ok(ir)
}

/// Shared translation context.
struct Ctx<'a> {
    machine: &'a MachineDesc,
    symbols: &'a SymbolTable,
}

/// Per-loop environment: what the enclosing loop hoisted or
/// scalar-replaced, so body blocks treat those values as register-resident.
#[derive(Clone, Default, Debug)]
struct LoopEnv {
    #[allow(dead_code)] // kept for diagnostics and future passes
    var: String,
    #[allow(dead_code)]
    assigned: HashSet<String>,
    /// Canonical expr key -> hoisted register name.
    hoisted: HashMap<String, String>,
    /// Array-ref key -> accumulator register name (reduction recognition).
    replaced: HashMap<String, String>,
}

impl<'a> Ctx<'a> {
    fn nodes(&self, stmts: &[Stmt], env: Option<&LoopEnv>) -> Result<Vec<IrNode>, TranslateError> {
        let mut out = Vec::new();
        let mut builder: Option<BlockBuilder<'_>> = None;
        for stmt in stmts {
            match stmt {
                Stmt::Assign { .. } | Stmt::Call { .. } | Stmt::Return { .. } => {
                    let b = builder.get_or_insert_with(|| BlockBuilder::new(self, env.cloned()));
                    b.stmt(stmt)?;
                }
                Stmt::Do {
                    var,
                    lb,
                    ub,
                    step,
                    body,
                    ..
                } => {
                    if let Some(b) = builder.take() {
                        out.push(IrNode::Block(b.finish()));
                    }
                    out.push(IrNode::Loop(Box::new(self.build_loop(
                        var,
                        lb,
                        ub,
                        step.as_ref(),
                        body,
                    )?)));
                }
                Stmt::DoWhile { cond, body, span } => {
                    if let Some(b) = builder.take() {
                        out.push(IrNode::Block(b.finish()));
                    }
                    out.push(IrNode::Loop(Box::new(
                        self.build_while_loop(cond, body, *span)?,
                    )));
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                } => {
                    if let Some(b) = builder.take() {
                        out.push(IrNode::Block(b.finish()));
                    }
                    let mut cb = BlockBuilder::new(self, env.cloned());
                    let cv = cb.expr(cond, *span)?;
                    cb.block.emit(BasicOp::BranchCond, vec![cv.0]);
                    out.push(IrNode::If(Box::new(IfIr {
                        cond_block: cb.finish(),
                        cond: cond.clone(),
                        then_nodes: self.nodes(then_body, env)?,
                        else_nodes: self.nodes(else_body, env)?,
                    })));
                }
            }
        }
        if let Some(b) = builder.take() {
            out.push(IrNode::Block(b.finish()));
        }
        Ok(out)
    }

    fn build_loop(
        &self,
        var: &str,
        lb: &Expr,
        ub: &Expr,
        step: Option<&Expr>,
        body: &[Stmt],
    ) -> Result<LoopIr, TranslateError> {
        let mut assigned = assigned_names(body);
        assigned.insert(var.to_string());

        let mut env = LoopEnv {
            var: var.to_string(),
            assigned: assigned.clone(),
            hoisted: HashMap::new(),
            replaced: HashMap::new(),
        };

        // Preheader: bound expressions are evaluated once (C(lb)+C(ub)+C(step)).
        let mut pre = BlockBuilder::new(self, None);
        let span = Span::default();
        pre.expr(lb, span)?;
        pre.expr(ub, span)?;
        if let Some(s) = step {
            pre.expr(s, span)?;
        }

        // Loop-invariant code motion: hoist maximal invariant subexpressions.
        if self.machine.backend.licm {
            let mut candidates = Vec::new();
            collect_invariant_subexprs(body, var, &assigned, &mut candidates);
            for e in candidates {
                let key = e.to_string();
                if !env.hoisted.contains_key(&key) {
                    let name = format!("h${}", env.hoisted.len());
                    pre.expr(&e, span)?;
                    env.hoisted.insert(key, name);
                }
            }
        }

        // Sum-reduction recognition: array cells updated with
        // loop-invariant subscripts live in a register across the loop;
        // "all but one store instruction can be eliminated" (§2.2.2).
        let mut post = BlockBuilder::new(self, None);
        if self.machine.backend.reduction_recognition {
            for cell in reduction_cells(body, var, &assigned, self.symbols) {
                let key = cell.key();
                if !env.replaced.contains_key(&key) {
                    let name = format!("r${}", env.replaced.len());
                    // One-time load before the loop, one-time store after.
                    pre.load_ref(&cell, span)?;
                    post.store_ref(&cell, None, span)?;
                    env.replaced.insert(key, name);
                }
            }
        }

        // Per-iteration control: increment, compare against the bound,
        // conditional branch back.
        let mut control = BlockIr::new();
        let iv = control.add_value(ValueDef::External(var.to_string()));
        let one = control.add_value(ValueDef::IntConst(1));
        let next = control.emit(BasicOp::IAdd, vec![iv, one]);
        let ubv = control.add_value(ValueDef::External("ub".to_string()));
        let cmp = control.emit(BasicOp::ICmp, vec![next, ubv]);
        control.emit(BasicOp::BranchCond, vec![cmp]);

        let body_nodes = self.nodes(body, Some(&env))?;

        Ok(LoopIr {
            var: var.to_string(),
            lb: lb.clone(),
            ub: ub.clone(),
            step: step.cloned(),
            preheader: pre.finish(),
            control,
            body: body_nodes,
            postheader: post.finish(),
        })
    }
}

impl<'a> Ctx<'a> {
    /// Builds a `do while` loop: no induction variable, a synthetic
    /// unknown trip count (the aggregator mints `trip$while…`), and the
    /// condition re-evaluated in the per-iteration control block.
    fn build_while_loop(
        &self,
        cond: &Expr,
        body: &[Stmt],
        span: Span,
    ) -> Result<LoopIr, TranslateError> {
        let assigned = assigned_names(body);
        // The loop "variable" is a synthetic name no source identifier can
        // collide with (source identifiers cannot contain `$`).
        let var = format!("while${}:{}", span.line, span.col);

        let mut env = LoopEnv {
            var: var.clone(),
            assigned: assigned.clone(),
            hoisted: HashMap::new(),
            replaced: HashMap::new(),
        };

        let mut pre = BlockBuilder::new(self, None);
        if self.machine.backend.licm {
            let mut candidates = Vec::new();
            // The condition re-evaluates each iteration: hoist its
            // invariant pieces too.
            scan_invariant_expr(cond, &var, &assigned, &mut candidates);
            collect_invariant_subexprs(body, &var, &assigned, &mut candidates);
            for e in candidates {
                let key = e.to_string();
                if !env.hoisted.contains_key(&key) {
                    let name = format!("h${}", env.hoisted.len());
                    pre.expr(&e, span)?;
                    env.hoisted.insert(key, name);
                }
            }
        }

        // Per-iteration control: evaluate the condition and branch.
        let mut control_builder = BlockBuilder::new(self, Some(env.clone()));
        let cv = control_builder.expr(cond, span)?;
        control_builder.block.emit(BasicOp::BranchCond, vec![cv.0]);
        let control = control_builder.finish();

        let body_nodes = self.nodes(body, Some(&env))?;

        // Bounds are unknowable: mark them with a non-polynomial sentinel
        // (the condition expression itself) so the aggregator falls back
        // to a fresh trip-count symbol.
        Ok(LoopIr {
            var,
            lb: cond.clone(),
            ub: cond.clone(),
            step: None,
            preheader: pre.finish(),
            control,
            body: body_nodes,
            postheader: BlockIr::new(),
        })
    }
}

/// Collects maximal invariant, non-trivial subexpressions of the loop body
/// (stopping at nested loops, which get their own environments).
fn collect_invariant_subexprs(
    stmts: &[Stmt],
    var: &str,
    assigned: &HashSet<String>,
    out: &mut Vec<Expr>,
) {
    let scan_expr = scan_invariant_expr;
    for s in stmts {
        match s {
            Stmt::Assign { target, value, .. } => {
                if let Expr::ArrayRef { indices, .. } = target {
                    for i in indices {
                        scan_expr(i, var, assigned, out);
                    }
                }
                scan_expr(value, var, assigned, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                scan_expr(cond, var, assigned, out);
                collect_invariant_subexprs(then_body, var, assigned, out);
                collect_invariant_subexprs(else_body, var, assigned, out);
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    scan_expr(a, var, assigned, out);
                }
            }
            // Nested loops manage their own invariants.
            Stmt::Do { .. } | Stmt::DoWhile { .. } | Stmt::Return { .. } => {}
        }
    }
}

/// Records maximal invariant, non-trivial subexpressions of one
/// expression (shared by loop bodies and `do while` conditions).
fn scan_invariant_expr(e: &Expr, var: &str, assigned: &HashSet<String>, out: &mut Vec<Expr>) {
    if is_nontrivial(e) && is_invariant(e, var, assigned) {
        out.push(e.clone());
        return; // maximal: do not descend
    }
    match e {
        Expr::Unary { operand, .. } => scan_invariant_expr(operand, var, assigned, out),
        Expr::Binary { lhs, rhs, .. } => {
            scan_invariant_expr(lhs, var, assigned, out);
            scan_invariant_expr(rhs, var, assigned, out);
        }
        Expr::ArrayRef { indices, .. } => {
            for i in indices {
                scan_invariant_expr(i, var, assigned, out);
            }
        }
        Expr::Intrinsic { args, .. } => {
            for a in args {
                scan_invariant_expr(a, var, assigned, out);
            }
        }
        _ => {}
    }
}

/// Returns `true` if `name` occurs in `key` as a whole identifier.
fn mentions_ident(key: &str, name: &str) -> bool {
    let bytes = key.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut start = 0;
    while let Some(pos) = key[start..].find(name) {
        let i = start + pos;
        let before_ok = i == 0 || !is_word(bytes[i - 1]);
        let after = i + name.len();
        let after_ok = after >= bytes.len() || !is_word(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        start = i + 1;
    }
    false
}

/// An expression worth a register: more than a literal or bare variable.
fn is_nontrivial(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Binary { .. } | Expr::Intrinsic { .. } | Expr::ArrayRef { .. } | Expr::Unary { .. }
    )
}

/// Finds array references of the form `A(inv…) = A(inv…) op e` whose
/// subscripts are invariant in the loop — reduction/accumulator cells.
fn reduction_cells(
    stmts: &[Stmt],
    var: &str,
    assigned: &HashSet<String>,
    symbols: &SymbolTable,
) -> Vec<MemRef> {
    let mut out = Vec::new();
    for s in stmts {
        if let Stmt::Assign {
            target: Expr::ArrayRef { name, indices },
            value,
            ..
        } = s
        {
            let subs_invariant = indices.iter().all(|ix| {
                // The subscript must not involve the loop variable or
                // anything assigned in the loop (other than via the array).
                let mut inv = true;
                ix.walk(&mut |e| {
                    if let Expr::Var(n) = e {
                        if n == var || assigned.contains(n) {
                            inv = false;
                        }
                    }
                });
                inv
            });
            if !subs_invariant {
                continue;
            }
            // The RHS must read the same cell (a genuine update).
            let key = MemRef {
                array: name.clone(),
                subscripts: indices.clone(),
            }
            .key();
            let mut reads_cell = false;
            value.walk(&mut |e| {
                if let Expr::ArrayRef {
                    name: n2,
                    indices: ix2,
                } = e
                {
                    let k2 = MemRef {
                        array: n2.clone(),
                        subscripts: ix2.clone(),
                    }
                    .key();
                    if k2 == key {
                        reads_cell = true;
                    }
                }
            });
            if reads_cell && symbols.is_array(name) {
                out.push(MemRef {
                    array: name.clone(),
                    subscripts: indices.clone(),
                });
            }
        }
    }
    out
}

/// Builds one straight-line [`BlockIr`].
struct BlockBuilder<'a> {
    ctx: &'a Ctx<'a>,
    block: BlockIr,
    /// Register-resident scalar values.
    scalars: HashMap<String, ValueId>,
    /// Canonical expression key -> value (CSE hash-consing).
    cse: HashMap<String, ValueId>,
    int_consts: HashMap<i64, ValueId>,
    real_consts: HashMap<u64, ValueId>,
    /// Last store op per array (for load-after-store edges).
    last_store: HashMap<String, (OpId, MemRef)>,
    /// Loads since the last store per array (anti edges).
    loads_since_store: HashMap<String, Vec<OpId>>,
    /// Loads issued, for the register-pressure heuristic.
    load_count: u32,
    env: Option<LoopEnv>,
}

impl<'a> BlockBuilder<'a> {
    fn new(ctx: &'a Ctx<'a>, env: Option<LoopEnv>) -> BlockBuilder<'a> {
        BlockBuilder {
            ctx,
            block: BlockIr::new(),
            scalars: HashMap::new(),
            cse: HashMap::new(),
            int_consts: HashMap::new(),
            real_consts: HashMap::new(),
            last_store: HashMap::new(),
            loads_since_store: HashMap::new(),
            load_count: 0,
            env,
        }
    }

    fn finish(self) -> BlockIr {
        if self.ctx.machine.backend.dce {
            // Values that escape the block — scalar registers and CSE'd
            // expressions (hoisted invariants, pre-loaded reduction cells) —
            // stay live across blocks.
            let mut live_out: Vec<ValueId> = self.scalars.values().copied().collect();
            live_out.extend(self.cse.values().copied());
            live_out.sort();
            live_out.dedup();
            crate::passes::dce_with_live(self.block, &live_out)
        } else {
            self.block
        }
    }

    fn err<T>(&self, msg: impl Into<String>, span: Span) -> Result<T, TranslateError> {
        Err(TranslateError {
            message: msg.into(),
            span,
        })
    }

    fn ty(&self, e: &Expr, span: Span) -> Result<BaseType, TranslateError> {
        type_of_expr(e, self.ctx.symbols).map_err(|fe| TranslateError {
            message: fe.message,
            span,
        })
    }

    fn int_const(&mut self, n: i64) -> ValueId {
        let block = &mut self.block;
        *self
            .int_consts
            .entry(n)
            .or_insert_with(|| block.add_value(ValueDef::IntConst(n)))
    }

    fn real_const(&mut self, x: f64) -> ValueId {
        if let Some(v) = self.real_consts.get(&x.to_bits()) {
            return *v;
        }
        let v = self.block.add_value(ValueDef::RealConst(x));
        // Inside a loop body the back end keeps pool constants in registers
        // across iterations, so the per-iteration cost is zero; in
        // straight-line code the constant costs one pool load.
        let result = if self.env.is_some() {
            v
        } else {
            self.block.emit(BasicOp::LoadFloat, vec![v])
        };
        self.real_consts.insert(x.to_bits(), result);
        result
    }

    fn external(&mut self, name: &str) -> ValueId {
        if let Some(v) = self.scalars.get(name) {
            return *v;
        }
        let v = self.block.add_value(ValueDef::External(name.to_string()));
        self.scalars.insert(name.to_string(), v);
        v
    }

    // --- statements ----------------------------------------------------------

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), TranslateError> {
        match stmt {
            Stmt::Assign {
                target,
                value,
                span,
            } => match target {
                Expr::Var(name) => {
                    let (v, _) = self.expr(value, *span)?;
                    // Register write: the scalar's current value changes.
                    self.scalars.insert(name.clone(), v);
                    // CSE entries mentioning the scalar are stale.
                    self.cse.retain(|k, _| !mentions_ident(k, name));
                    Ok(())
                }
                Expr::ArrayRef { name, indices } => {
                    let (v, vty) = self.expr(value, *span)?;
                    let target_ty = self.ty(target, *span)?;
                    let v = self.convert(v, vty, target_ty);
                    let mref = MemRef {
                        array: name.clone(),
                        subscripts: indices.clone(),
                    };
                    self.store_ref(&mref, Some(v), *span)?;
                    Ok(())
                }
                other => self.err(format!("unsupported assignment target `{other}`"), *span),
            },
            Stmt::Call { name, args, span } => {
                let mut argvals = Vec::new();
                for a in args {
                    match a {
                        // Arrays pass by reference: one address computation.
                        Expr::Var(n) if self.ctx.symbols.is_array(n) => {
                            argvals.push(self.block.emit(BasicOp::AddrCalc, vec![]));
                            let _ = n;
                        }
                        _ => {
                            let (v, _) = self.expr(a, *span)?;
                            argvals.push(v);
                        }
                    }
                }
                let res = self
                    .block
                    .add_value(ValueDef::External(format!("call${name}")));
                self.block.push_op(Op {
                    basic: BasicOp::Call,
                    args: argvals,
                    result: Some(res),
                    mem: None,
                    extra_deps: Vec::new(),
                    callee: Some(name.clone()),
                });
                Ok(())
            }
            Stmt::Return { .. } => {
                self.block.emit(BasicOp::Return, vec![]);
                Ok(())
            }
            other => self.err(
                "control statement inside straight-line builder",
                other.span(),
            ),
        }
    }

    // --- memory --------------------------------------------------------------

    /// Computes the address value for an array reference.
    fn address(&mut self, mref: &MemRef, span: Span) -> Result<ValueId, TranslateError> {
        let key = format!("&{}", mref.key());
        if let Some(v) = self.cse.get(&key) {
            return Ok(*v);
        }
        let all_affine = mref.subscripts.iter().all(|s| affine_form(s).is_some());
        let v = if self.ctx.machine.backend.strength_reduction && all_affine {
            // Update-form addressing: induction-variable strength reduction
            // turns the whole subscript polynomial into one address update.
            self.block.emit(BasicOp::AddrCalc, vec![])
        } else {
            // Column-major: off = (s1-1) + (s2-1)*d1 + (s3-1)*d1*d2 + ...
            let dims = self
                .ctx
                .symbols
                .lookup(&mref.array)
                .map(|i| i.dims.clone())
                .unwrap_or_default();
            let one = self.int_const(1);
            let mut acc: Option<ValueId> = None;
            let mut extent_prod: Option<ValueId> = None;
            for (k, sub) in mref.subscripts.iter().enumerate() {
                let (sv, _) = self.expr(sub, span)?;
                let shifted = self.block.emit(BasicOp::ISub, vec![sv, one]);
                let term = match extent_prod {
                    None => shifted,
                    Some(ep) => self.block.emit(BasicOp::IMul, vec![shifted, ep]),
                };
                acc = Some(match acc {
                    None => term,
                    Some(a) => self.block.emit(BasicOp::IAdd, vec![a, term]),
                });
                // Maintain the running extent product for the next dim.
                if k + 1 < mref.subscripts.len() {
                    let extent = match dims.get(k) {
                        Some(d) => self.expr(d, span)?.0,
                        None => self.int_const(1),
                    };
                    extent_prod = Some(match extent_prod {
                        None => extent,
                        Some(ep) => self.block.emit(BasicOp::IMul, vec![ep, extent]),
                    });
                }
            }
            let off = acc.unwrap_or(one);
            self.block.emit(BasicOp::AddrCalc, vec![off])
        };
        self.cse.insert(key, v);
        Ok(v)
    }

    fn elem_type(&self, array: &str) -> BaseType {
        self.ctx
            .symbols
            .lookup(array)
            .map(|i| i.ty)
            .unwrap_or(BaseType::Real)
    }

    /// Returns `true` when two refs to the same array provably touch
    /// different elements (affine forms with equal coefficients, different
    /// constants).
    fn provably_disjoint(a: &MemRef, b: &MemRef) -> bool {
        if a.array != b.array || a.subscripts.len() != b.subscripts.len() {
            return false;
        }
        let mut any_differs = false;
        for (sa, sb) in a.subscripts.iter().zip(&b.subscripts) {
            match (affine_form(sa), affine_form(sb)) {
                (Some(fa), Some(fb)) if fa.terms == fb.terms => {
                    if fa.constant != fb.constant {
                        any_differs = true;
                    }
                }
                // Different shapes (or non-affine): cannot prove.
                _ => return false,
            }
        }
        any_differs
    }

    fn load_ref(&mut self, mref: &MemRef, span: Span) -> Result<ValueId, TranslateError> {
        // Reduction cells live in registers inside the loop body.
        if let Some(env) = &self.env {
            if let Some(reg) = env.replaced.get(&mref.key()) {
                let reg = reg.clone();
                return Ok(self.external(&reg));
            }
        }
        let key = format!("ld {}", mref.key());
        if self.ctx.machine.backend.cse {
            if let Some(v) = self.cse.get(&key) {
                return Ok(*v);
            }
        }
        let addr = self.address(mref, span)?;
        let basic = match self.elem_type(&mref.array) {
            BaseType::Real => BasicOp::LoadFloat,
            _ => BasicOp::LoadInt,
        };
        let result = self.block.add_value(ValueDef::External(String::new()));
        let mut extra = Vec::new();
        if let Some((st, smref)) = self.last_store.get(&mref.array) {
            if !Self::provably_disjoint(mref, smref) {
                extra.push(*st);
            }
        }
        let op = self.block.push_op(Op {
            basic,
            args: vec![addr],
            result: Some(result),
            mem: Some(mref.clone()),
            extra_deps: extra,
            callee: None,
        });
        self.loads_since_store
            .entry(mref.array.clone())
            .or_default()
            .push(op);
        self.cse.insert(key, result);
        self.spill_heuristic();
        Ok(result)
    }

    fn store_ref(
        &mut self,
        mref: &MemRef,
        value: Option<ValueId>,
        span: Span,
    ) -> Result<(), TranslateError> {
        // Reduction cells: the store is deferred to the postheader.
        if let Some(env) = &self.env {
            if let Some(reg) = env.replaced.get(&mref.key()) {
                if let Some(v) = value {
                    let reg = reg.clone();
                    self.scalars.insert(reg, v);
                }
                return Ok(());
            }
        }
        let addr = self.address(mref, span)?;
        let basic = match self.elem_type(&mref.array) {
            BaseType::Real => BasicOp::StoreFloat,
            _ => BasicOp::StoreInt,
        };
        let mut args = vec![addr];
        let v = match value {
            Some(v) => v,
            // Store-back of a register cell with unknown value (postheader).
            None => self
                .block
                .add_value(ValueDef::External(format!("acc {}", mref.key()))),
        };
        args.insert(0, v);
        let mut extra = Vec::new();
        if let Some((st, _)) = self.last_store.get(&mref.array) {
            extra.push(*st); // output dependence
        }
        if let Some(loads) = self.loads_since_store.get(&mref.array) {
            extra.extend(loads.iter().copied()); // anti dependences
        }
        let op = self.block.push_op(Op {
            basic,
            args,
            result: None,
            mem: Some(mref.clone()),
            extra_deps: extra,
            callee: None,
        });
        self.last_store
            .insert(mref.array.clone(), (op, mref.clone()));
        self.loads_since_store.remove(&mref.array);
        // A store kills CSE'd loads of possibly-aliased elements; the
        // just-stored value forwards to later loads of the same element.
        let arr = mref.array.clone();
        self.cse
            .retain(|k, _| !(k.starts_with("ld ") && k[3..].starts_with(arr.as_str())));
        if let Some(v) = value {
            self.cse.insert(format!("ld {}", mref.key()), v);
        }
        self.spill_heuristic();
        Ok(())
    }

    /// The paper's register-pressure heuristic: after N outstanding loads,
    /// charge one spill store.
    fn spill_heuristic(&mut self) {
        self.load_count += 1;
        let limit = self.ctx.machine.register_load_limit.max(1);
        if self.load_count.is_multiple_of(limit) {
            // A spill store: costs a store operation but touches no
            // user-visible array (mem = None keeps it out of the cache model).
            let v = self
                .block
                .add_value(ValueDef::External("spill".to_string()));
            self.block.push_op(Op {
                basic: BasicOp::StoreFloat,
                args: vec![v],
                result: None,
                mem: None,
                extra_deps: Vec::new(),
                callee: None,
            });
        }
    }

    // --- expressions ----------------------------------------------------------

    fn convert(&mut self, v: ValueId, from: BaseType, to: BaseType) -> ValueId {
        if from == to || from == BaseType::Logical || to == BaseType::Logical {
            return v;
        }
        self.block.emit(BasicOp::Convert, vec![v])
    }

    fn expr(&mut self, e: &Expr, span: Span) -> Result<(ValueId, BaseType), TranslateError> {
        // Hoisted invariants are register-resident in loop bodies.
        if let Some(env) = &self.env {
            if let Some(name) = env.hoisted.get(&e.to_string()) {
                let name = name.clone();
                let ty = self.ty(e, span)?;
                return Ok((self.external(&name), ty));
            }
        }
        let key = e.to_string();
        if self.ctx.machine.backend.cse && is_nontrivial(e) {
            if let Some(v) = self.cse.get(&key) {
                let ty = self.ty(e, span)?;
                return Ok((*v, ty));
            }
        }
        let (v, ty) = self.expr_uncached(e, span)?;
        if self.ctx.machine.backend.cse && is_nontrivial(e) {
            self.cse.insert(key, v);
        }
        Ok((v, ty))
    }

    fn expr_uncached(
        &mut self,
        e: &Expr,
        span: Span,
    ) -> Result<(ValueId, BaseType), TranslateError> {
        match e {
            Expr::IntLit(n) => Ok((self.int_const(*n), BaseType::Integer)),
            Expr::RealLit(x) => Ok((self.real_const(*x), BaseType::Real)),
            Expr::LogicalLit(b) => Ok((self.int_const(*b as i64), BaseType::Logical)),
            Expr::Var(name) => {
                let ty = self.ty(e, span)?;
                Ok((self.external(name), ty))
            }
            Expr::ArrayRef { name, indices } => {
                let mref = MemRef {
                    array: name.clone(),
                    subscripts: indices.clone(),
                };
                let v = self.load_ref(&mref, span)?;
                Ok((v, self.elem_type(name)))
            }
            Expr::Unary { op, operand } => {
                let (v, ty) = self.expr(operand, span)?;
                match op {
                    UnOp::Neg => {
                        let basic = if ty == BaseType::Real {
                            BasicOp::FNeg
                        } else {
                            BasicOp::INeg
                        };
                        Ok((self.block.emit(basic, vec![v]), ty))
                    }
                    UnOp::Not => Ok((self.block.emit(BasicOp::ILogic, vec![v]), BaseType::Logical)),
                }
            }
            Expr::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs, span),
            Expr::Intrinsic { func, args } => self.intrinsic(*func, args, span),
        }
    }

    fn binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        span: Span,
    ) -> Result<(ValueId, BaseType), TranslateError> {
        // Multiply-add fusion (paper: "architecture specific operations such
        // as the multiply-and-add ... are recognized by the compiler").
        if matches!(op, BinOp::Add | BinOp::Sub)
            && self.ctx.machine.supports_fma
            && self.ctx.machine.backend.fma_fusion
        {
            let result_ty = self.ty(&Expr::binary(op, lhs.clone(), rhs.clone()), span)?;
            if result_ty == BaseType::Real {
                // a*b + c, c + a*b, or a*b - c.
                let try_fuse =
                    |mul: &Expr,
                     other: &Expr,
                     this: &mut Self|
                     -> Option<Result<(ValueId, BaseType), TranslateError>> {
                        if let Expr::Binary {
                            op: BinOp::Mul,
                            lhs: ma,
                            rhs: mb,
                        } = mul
                        {
                            Some((|| {
                                let (a, aty) = this.expr(ma, span)?;
                                let a = this.convert(a, aty, BaseType::Real);
                                let (b, bty) = this.expr(mb, span)?;
                                let b = this.convert(b, bty, BaseType::Real);
                                let (c, cty) = this.expr(other, span)?;
                                let c = this.convert(c, cty, BaseType::Real);
                                Ok((this.block.emit(BasicOp::Fma, vec![a, b, c]), BaseType::Real))
                            })())
                        } else {
                            None
                        }
                    };
                if let Some(r) = try_fuse(lhs, rhs, self) {
                    return r;
                }
                if op == BinOp::Add {
                    if let Some(r) = try_fuse(rhs, lhs, self) {
                        return r;
                    }
                }
            }
        }

        if op == BinOp::Pow {
            return self.power(lhs, rhs, span);
        }

        let (mut lv, lty) = self.expr(lhs, span)?;
        let (mut rv, rty) = self.expr(rhs, span)?;

        if op.is_logical() {
            let v = self.block.emit(BasicOp::ILogic, vec![lv, rv]);
            return Ok((v, BaseType::Logical));
        }
        if op.is_relational() {
            let cmp = if lty == BaseType::Real || rty == BaseType::Real {
                lv = self.convert(lv, lty, BaseType::Real);
                rv = self.convert(rv, rty, BaseType::Real);
                BasicOp::FCmp
            } else {
                BasicOp::ICmp
            };
            return Ok((self.block.emit(cmp, vec![lv, rv]), BaseType::Logical));
        }

        let result_ty = if lty == BaseType::Integer && rty == BaseType::Integer {
            BaseType::Integer
        } else {
            BaseType::Real
        };
        lv = self.convert(lv, lty, result_ty);
        rv = self.convert(rv, rty, result_ty);

        let basic = match (op, result_ty) {
            (BinOp::Add, BaseType::Integer) => BasicOp::IAdd,
            (BinOp::Sub, BaseType::Integer) => BasicOp::ISub,
            (BinOp::Mul, BaseType::Integer) => {
                // Variable-time multiply: small known constants are cheap
                // (the paper's 3-vs-5-cycle RS 6000 example).
                let small = lhs.as_int().map(|n| n.abs() <= 127).unwrap_or(false)
                    || rhs.as_int().map(|n| n.abs() <= 127).unwrap_or(false);
                if small {
                    BasicOp::IMulSmall
                } else {
                    BasicOp::IMul
                }
            }
            (BinOp::Div, BaseType::Integer) => {
                if rhs
                    .as_int()
                    .map(|n| n > 0 && n.count_ones() == 1)
                    .unwrap_or(false)
                {
                    BasicOp::IShift // divide by power of two
                } else {
                    BasicOp::IDiv
                }
            }
            (BinOp::Add, _) => BasicOp::FAdd,
            (BinOp::Sub, _) => BasicOp::FSub,
            (BinOp::Mul, _) => BasicOp::FMul,
            (BinOp::Div, _) => BasicOp::FDiv,
            (other, _) => return self.err(format!("unhandled operator `{other}`"), span),
        };
        Ok((self.block.emit(basic, vec![lv, rv]), result_ty))
    }

    fn power(
        &mut self,
        base: &Expr,
        exp: &Expr,
        span: Span,
    ) -> Result<(ValueId, BaseType), TranslateError> {
        let (bv, bty) = self.expr(base, span)?;
        if let Some(n) = exp.as_int() {
            if (2..=8).contains(&n) {
                // Repeated squaring: x**2 = 1 mul, x**3 = 2, x**4 = 2, ...
                let mul = if bty == BaseType::Real {
                    BasicOp::FMul
                } else {
                    BasicOp::IMul
                };
                let mut have: u32 = 1;
                let mut acc = bv;
                // Square while the doubled power still fits under n.
                while (have * 2) as i64 <= n {
                    acc = self.block.emit(mul, vec![acc, acc]);
                    have *= 2;
                }
                let mut rem = n as u32 - have;
                let mut result = acc;
                let mut factor = bv;
                while rem > 0 {
                    result = self.block.emit(mul, vec![result, factor]);
                    rem -= 1;
                    factor = bv;
                }
                return Ok((result, bty));
            }
        }
        // General power: library call.
        let (ev, _) = self.expr(exp, span)?;
        let res = self.block.add_value(ValueDef::External("pow".to_string()));
        self.block.push_op(Op {
            basic: BasicOp::Call,
            args: vec![bv, ev],
            result: Some(res),
            mem: None,
            extra_deps: Vec::new(),
            callee: Some("pow".to_string()),
        });
        Ok((res, BaseType::Real))
    }

    fn intrinsic(
        &mut self,
        func: Intrinsic,
        args: &[Expr],
        span: Span,
    ) -> Result<(ValueId, BaseType), TranslateError> {
        match func {
            Intrinsic::Sqrt => {
                let (v, ty) = self.expr(&args[0], span)?;
                let v = self.convert(v, ty, BaseType::Real);
                Ok((self.block.emit(BasicOp::FSqrt, vec![v]), BaseType::Real))
            }
            Intrinsic::Abs => {
                let (v, ty) = self.expr(&args[0], span)?;
                let basic = if ty == BaseType::Real {
                    BasicOp::FAbs
                } else {
                    BasicOp::ILogic
                };
                Ok((self.block.emit(basic, vec![v]), ty))
            }
            Intrinsic::Max | Intrinsic::Min => {
                // (n-1) compare+select pairs.
                let (mut acc, mut ty) = self.expr(&args[0], span)?;
                for a in &args[1..] {
                    let (v, vty) = self.expr(a, span)?;
                    let rty = if ty == BaseType::Real || vty == BaseType::Real {
                        BaseType::Real
                    } else {
                        BaseType::Integer
                    };
                    let accc = self.convert(acc, ty, rty);
                    let vc = self.convert(v, vty, rty);
                    let cmp = if rty == BaseType::Real {
                        BasicOp::FCmp
                    } else {
                        BasicOp::ICmp
                    };
                    let c = self.block.emit(cmp, vec![accc, vc]);
                    acc = self.block.emit(BasicOp::Move, vec![c, accc, vc]);
                    ty = rty;
                }
                Ok((acc, ty))
            }
            Intrinsic::Mod => {
                let (a, aty) = self.expr(&args[0], span)?;
                let (b, bty) = self.expr(&args[1], span)?;
                if aty == BaseType::Integer && bty == BaseType::Integer {
                    // a - (a/b)*b
                    let q = self.block.emit(BasicOp::IDiv, vec![a, b]);
                    let p = self.block.emit(BasicOp::IMul, vec![q, b]);
                    Ok((
                        self.block.emit(BasicOp::ISub, vec![a, p]),
                        BaseType::Integer,
                    ))
                } else {
                    let af = self.convert(a, aty, BaseType::Real);
                    let bf = self.convert(b, bty, BaseType::Real);
                    let q = self.block.emit(BasicOp::FDiv, vec![af, bf]);
                    let t = self.block.emit(BasicOp::Convert, vec![q]);
                    let p = self.block.emit(BasicOp::FMul, vec![t, bf]);
                    Ok((self.block.emit(BasicOp::FSub, vec![af, p]), BaseType::Real))
                }
            }
            Intrinsic::Exp | Intrinsic::Log | Intrinsic::Sin | Intrinsic::Cos => {
                let (v, ty) = self.expr(&args[0], span)?;
                let v = self.convert(v, ty, BaseType::Real);
                let res = self
                    .block
                    .add_value(ValueDef::External(func.name().to_string()));
                self.block.push_op(Op {
                    basic: BasicOp::Call,
                    args: vec![v],
                    result: Some(res),
                    mem: None,
                    extra_deps: Vec::new(),
                    callee: Some(func.name().to_string()),
                });
                Ok((res, BaseType::Real))
            }
            Intrinsic::Int => {
                let (v, ty) = self.expr(&args[0], span)?;
                Ok((self.convert(v, ty, BaseType::Integer), BaseType::Integer))
            }
            Intrinsic::Real => {
                let (v, ty) = self.expr(&args[0], span)?;
                Ok((self.convert(v, ty, BaseType::Real), BaseType::Real))
            }
        }
    }
}
