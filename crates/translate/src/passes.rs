//! Block-level cleanup passes imitating the back end (paper §2.2.2).
//!
//! CSE and LICM happen during translation (hash-consing and preheader
//! hoisting); this module holds the passes that run on finished blocks.

use crate::ir::{BlockIr, OpId, ValueDef, ValueId};
use presage_machine::BasicOp;

/// Returns `true` for operations whose effect is observable even if their
/// result value is unused.
fn has_side_effect(basic: BasicOp) -> bool {
    basic.is_store() || basic.is_control() || matches!(basic, BasicOp::Call)
}

/// Dead-code elimination: removes operations whose results are never used
/// and that have no side effects, compacting ids.
///
/// The translator can produce dead code when FMA fusion orphans an operand
/// chain or an address computation becomes redundant.
pub fn dce(block: BlockIr) -> BlockIr {
    dce_with_live(block, &[])
}

/// [`dce`] with an explicit set of block-escaping values: results held in
/// scalar registers or hoisted-invariant slots that later blocks consume.
pub fn dce_with_live(block: BlockIr, live_out: &[ValueId]) -> BlockIr {
    let n = block.ops.len();
    let mut live = vec![false; n];
    let mut work: Vec<OpId> = Vec::new();
    for (i, op) in block.ops.iter().enumerate() {
        if has_side_effect(op.basic) {
            live[i] = true;
            work.push(OpId(i as u32));
        }
    }
    for v in live_out {
        if let Some(op) = block.producer(*v) {
            if !live[op.0 as usize] {
                live[op.0 as usize] = true;
                work.push(op);
            }
        }
    }
    while let Some(id) = work.pop() {
        for dep in block.deps_of(&block.ops[id.0 as usize]) {
            if !live[dep.0 as usize] {
                live[dep.0 as usize] = true;
                work.push(dep);
            }
        }
    }
    if live.iter().all(|l| *l) {
        return block;
    }

    // Rebuild with compact op ids; values are kept (cheap) but orphaned
    // results lose their producer link.
    let mut op_map: Vec<Option<OpId>> = vec![None; n];
    let mut new_ops = Vec::new();
    for (i, op) in block.ops.iter().enumerate() {
        if live[i] {
            op_map[i] = Some(OpId(new_ops.len() as u32));
            new_ops.push(op.clone());
        }
    }
    for op in &mut new_ops {
        op.extra_deps = op
            .extra_deps
            .iter()
            .filter_map(|d| op_map[d.0 as usize])
            .collect();
    }
    let mut values = block.values.clone();
    for (vi, def) in values.iter_mut().enumerate() {
        if let ValueDef::Op(old) = def {
            match op_map[old.0 as usize] {
                Some(new) => *def = ValueDef::Op(new),
                None => *def = ValueDef::External(format!("dead v{vi}")),
            }
        }
    }
    // Fix result links: each surviving op's result must point back to it.
    let rebuilt = BlockIr {
        values,
        ops: new_ops,
        interned: None,
    };
    debug_assert!(rebuilt.ops.iter().all(|op| {
        op.result
            .map(|r| matches!(rebuilt.value(r), ValueDef::Op(_) | ValueDef::External(_)))
            .unwrap_or(true)
    }));
    rebuilt
}

/// Counts how many result values are never consumed inside the block
/// (diagnostic helper for tests and the optimizer).
pub fn unused_results(block: &BlockIr) -> usize {
    let mut used = vec![false; block.values.len()];
    for op in &block.ops {
        for a in &op.args {
            used[a.0 as usize] = true;
        }
    }
    block
        .ops
        .iter()
        .filter(|op| {
            op.result
                .map(|ValueId(v)| !used[v as usize] && !has_side_effect(op.basic))
                .unwrap_or(false)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{MemRef, Op};

    #[test]
    fn dce_removes_unused_chain() {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let dead1 = b.emit(BasicOp::FAdd, vec![x, x]);
        let _dead2 = b.emit(BasicOp::FMul, vec![dead1, x]);
        let live = b.emit(BasicOp::FAdd, vec![x, x]);
        let addr = b.emit(BasicOp::AddrCalc, vec![]);
        b.push_op(Op {
            basic: BasicOp::StoreFloat,
            args: vec![live, addr],
            result: None,
            mem: Some(MemRef {
                array: "a".into(),
                subscripts: vec![],
            }),
            extra_deps: vec![],
            callee: None,
        });
        let out = dce(b);
        // dead1 and dead2 removed; live add + addr + store survive. Note:
        // `live` is the same expression as dead1 but CSE is not this pass's
        // job, so it stays.
        assert_eq!(out.len(), 3);
        assert!(out.ops.iter().all(|o| o.basic != BasicOp::FMul));
    }

    #[test]
    fn dce_keeps_fully_live_block_intact() {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let s = b.emit(BasicOp::FAdd, vec![x, x]);
        let addr = b.emit(BasicOp::AddrCalc, vec![]);
        b.push_op(Op {
            basic: BasicOp::StoreFloat,
            args: vec![s, addr],
            result: None,
            mem: None,
            extra_deps: vec![],
            callee: None,
        });
        let before = b.clone();
        assert_eq!(dce(b), before);
    }

    #[test]
    fn dce_preserves_calls_and_branches() {
        let mut b = BlockIr::new();
        let r = b.add_value(ValueDef::External("r".into()));
        b.push_op(Op {
            basic: BasicOp::Call,
            args: vec![],
            result: Some(r),
            mem: None,
            extra_deps: vec![],
            callee: Some("f".into()),
        });
        let c = b.emit(BasicOp::ICmp, vec![r, r]);
        b.emit(BasicOp::BranchCond, vec![c]);
        let out = dce(b);
        assert_eq!(
            out.len(),
            3,
            "call, cmp feeding branch, and branch all live"
        );
    }

    #[test]
    fn dce_remaps_extra_deps() {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let _dead = b.emit(BasicOp::FAdd, vec![x, x]);
        let addr = b.emit(BasicOp::AddrCalc, vec![]);
        let st1 = b.push_op(Op {
            basic: BasicOp::StoreFloat,
            args: vec![x, addr],
            result: None,
            mem: Some(MemRef {
                array: "a".into(),
                subscripts: vec![],
            }),
            extra_deps: vec![],
            callee: None,
        });
        b.push_op(Op {
            basic: BasicOp::StoreFloat,
            args: vec![x, addr],
            result: None,
            mem: Some(MemRef {
                array: "a".into(),
                subscripts: vec![],
            }),
            extra_deps: vec![st1],
            callee: None,
        });
        let out = dce(b);
        assert_eq!(out.len(), 3);
        let last = out.ops.last().unwrap();
        assert_eq!(last.extra_deps.len(), 1);
        // The remapped dep must point at the first store's new position.
        assert_eq!(
            out.ops[last.extra_deps[0].0 as usize].basic,
            BasicOp::StoreFloat
        );
    }

    #[test]
    fn unused_results_counts() {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        b.emit(BasicOp::FAdd, vec![x, x]);
        assert_eq!(unused_results(&b), 1);
    }
}
