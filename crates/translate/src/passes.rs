//! Block-level cleanup passes imitating the back end (paper §2.2.2).
//!
//! CSE and LICM happen during translation (hash-consing and preheader
//! hoisting); this module holds the passes that run on finished blocks:
//! dead-code elimination and the canonical operation ordering that makes
//! predictions invariant under commutative operand order.

use crate::ir::{BlockIr, OpId, ValueDef, ValueId};
use presage_frontend::fold::{encode_expr, fold128};
use presage_machine::BasicOp;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Returns `true` for operations whose effect is observable even if their
/// result value is unused.
fn has_side_effect(basic: BasicOp) -> bool {
    basic.is_store() || basic.is_control() || matches!(basic, BasicOp::Call)
}

/// Dead-code elimination: removes operations whose results are never used
/// and that have no side effects, compacting ids.
///
/// The translator can produce dead code when FMA fusion orphans an operand
/// chain or an address computation becomes redundant.
pub fn dce(block: BlockIr) -> BlockIr {
    dce_with_live(block, &[])
}

/// [`dce`] with an explicit set of block-escaping values: results held in
/// scalar registers or hoisted-invariant slots that later blocks consume.
pub fn dce_with_live(block: BlockIr, live_out: &[ValueId]) -> BlockIr {
    let n = block.ops.len();
    let mut live = vec![false; n];
    let mut work: Vec<OpId> = Vec::new();
    for (i, op) in block.ops.iter().enumerate() {
        if has_side_effect(op.basic) {
            live[i] = true;
            work.push(OpId(i as u32));
        }
    }
    for v in live_out {
        if let Some(op) = block.producer(*v) {
            if !live[op.0 as usize] {
                live[op.0 as usize] = true;
                work.push(op);
            }
        }
    }
    while let Some(id) = work.pop() {
        for dep in block.deps_of(&block.ops[id.0 as usize]) {
            if !live[dep.0 as usize] {
                live[dep.0 as usize] = true;
                work.push(dep);
            }
        }
    }
    if live.iter().all(|l| *l) {
        return block;
    }

    // Rebuild with compact op ids; values are kept (cheap) but orphaned
    // results lose their producer link.
    let mut op_map: Vec<Option<OpId>> = vec![None; n];
    let mut new_ops = Vec::new();
    for (i, op) in block.ops.iter().enumerate() {
        if live[i] {
            op_map[i] = Some(OpId(new_ops.len() as u32));
            new_ops.push(op.clone());
        }
    }
    for op in &mut new_ops {
        op.extra_deps = op
            .extra_deps
            .iter()
            .filter_map(|d| op_map[d.0 as usize])
            .collect();
    }
    let mut values = block.values.clone();
    for (vi, def) in values.iter_mut().enumerate() {
        if let ValueDef::Op(old) = def {
            match op_map[old.0 as usize] {
                Some(new) => *def = ValueDef::Op(new),
                None => *def = ValueDef::External(format!("dead v{vi}")),
            }
        }
    }
    // Fix result links: each surviving op's result must point back to it.
    let rebuilt = BlockIr {
        values,
        ops: new_ops,
        interned: None,
    };
    debug_assert!(rebuilt.ops.iter().all(|op| {
        op.result
            .map(|r| matches!(rebuilt.value(r), ValueDef::Op(_) | ValueDef::External(_)))
            .unwrap_or(true)
    }));
    rebuilt
}

/// Seed for the ordering keys, distinct from the AST content seed so an
/// op-key collision cannot alias a block content key.
const ORDER_SEED: u64 = 0x6f72_6465_7234_u64; // "order4"

/// Structural key of one operation: opcode, the *sorted multiset* of its
/// argument keys (so commuted operands agree), its memory reference, its
/// callee, and the sorted keys of its memory-edge predecessors. Two
/// operations get the same key exactly when they are interchangeable for
/// placement purposes.
fn op_keys(block: &BlockIr) -> Vec<u128> {
    let mut keys: Vec<u128> = Vec::with_capacity(block.ops.len());
    let value_key = |keys: &[u128], v: ValueId| -> u128 {
        let mut buf: Vec<u8> = Vec::with_capacity(16);
        match block.value(v) {
            ValueDef::IntConst(i) => {
                buf.push(0);
                buf.extend_from_slice(&i.to_le_bytes());
            }
            ValueDef::RealConst(x) => {
                buf.push(1);
                buf.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            ValueDef::External(s) => {
                buf.push(2);
                buf.extend_from_slice(s.as_bytes());
            }
            // Dependences always point at earlier ops, so the producer's
            // key is already computed.
            ValueDef::Op(id) => {
                buf.push(3);
                buf.extend_from_slice(&keys[id.0 as usize].to_le_bytes());
            }
        }
        fold128(&buf, ORDER_SEED)
    };
    let mut buf: Vec<u8> = Vec::with_capacity(64);
    for op in &block.ops {
        buf.clear();
        buf.extend_from_slice(&(op.basic as u32).to_le_bytes());
        let mut arg_keys: Vec<u128> = op.args.iter().map(|&a| value_key(&keys, a)).collect();
        arg_keys.sort_unstable();
        for k in &arg_keys {
            buf.extend_from_slice(&k.to_le_bytes());
        }
        buf.push(0xfe);
        if let Some(m) = &op.mem {
            buf.extend_from_slice(m.array.as_bytes());
            buf.push(0);
            for s in &m.subscripts {
                encode_expr(&mut buf, s);
            }
        }
        buf.push(0xfd);
        if let Some(c) = &op.callee {
            buf.extend_from_slice(c.as_bytes());
        }
        buf.push(0xfc);
        let mut dep_keys: Vec<u128> = op.extra_deps.iter().map(|d| keys[d.0 as usize]).collect();
        dep_keys.sort_unstable();
        for k in &dep_keys {
            buf.extend_from_slice(&k.to_le_bytes());
        }
        keys.push(fold128(&buf, ORDER_SEED));
    }
    keys
}

/// Canonical operation ordering: topologically re-sorts the block so
/// that structurally equal dependence graphs emit in one order, no
/// matter which operand of a commutative expression the translator
/// visited first.
///
/// The greedy placement is sensitive to emission order (Jacobi on wide8
/// shifts by ~12% between commuted operand orders — EXPERIMENTS.md E15),
/// so without this pass two sources that differ only by `b + c` vs
/// `c + b` could predict different costs. The pass runs Kahn's algorithm
/// with a priority queue keyed by the structural operation key
/// (original position as the tie-break for key-equal, hence
/// interchangeable, operations): dependences stay respected, and any two
/// isomorphic blocks — however their operands were ordered in source —
/// come out in the same operation sequence and therefore place to the
/// same cost.
pub fn canonical_order(block: BlockIr) -> BlockIr {
    let n = block.ops.len();
    if n <= 1 {
        return block;
    }
    let keys = op_keys(&block);
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, op) in block.ops.iter().enumerate() {
        let ds = block.deps_of(op);
        indegree[i] = ds.len();
        for d in ds {
            dependents[d.0 as usize].push(i);
        }
    }
    // Dependence-graph height (longest chain of dependents below): the
    // primary priority, so the canonical order is also a good placement
    // order — critical chains lead, exactly like the list scheduler's
    // priority. Heights are a function of the graph alone, so isomorphic
    // blocks agree on them.
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        for &j in &dependents[i] {
            height[i] = height[i].max(height[j] + 1);
        }
    }
    // Max-heap on height, then min on structural key, then min on
    // original position (key-equal ops are interchangeable, so this last
    // tie-break costs no canonicality).
    let mut ready: BinaryHeap<(u32, Reverse<(u128, usize)>)> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(|i| (height[i], Reverse((keys[i], i))))
        .collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    while let Some((_, Reverse((_, i)))) = ready.pop() {
        order.push(i);
        for &j in &dependents[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.push((height[j], Reverse((keys[j], j))));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "dependence graph must be acyclic");
    if order.iter().enumerate().all(|(new, &old)| new == old) {
        return block;
    }

    // Rebuild in canonical order, remapping op ids exactly like `dce`.
    let mut op_map: Vec<OpId> = vec![OpId(0); n];
    for (new, &old) in order.iter().enumerate() {
        op_map[old] = OpId(new as u32);
    }
    let mut new_ops = Vec::with_capacity(n);
    for &old in &order {
        let mut op = block.ops[old].clone();
        op.extra_deps = op.extra_deps.iter().map(|d| op_map[d.0 as usize]).collect();
        op.extra_deps.sort();
        new_ops.push(op);
    }
    let mut values = block.values.clone();
    for def in values.iter_mut() {
        if let ValueDef::Op(old) = def {
            *def = ValueDef::Op(op_map[old.0 as usize]);
        }
    }
    BlockIr {
        values,
        ops: new_ops,
        interned: None,
    }
}

/// Counts how many result values are never consumed inside the block
/// (diagnostic helper for tests and the optimizer).
pub fn unused_results(block: &BlockIr) -> usize {
    let mut used = vec![false; block.values.len()];
    for op in &block.ops {
        for a in &op.args {
            used[a.0 as usize] = true;
        }
    }
    block
        .ops
        .iter()
        .filter(|op| {
            op.result
                .map(|ValueId(v)| !used[v as usize] && !has_side_effect(op.basic))
                .unwrap_or(false)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{MemRef, Op};

    #[test]
    fn dce_removes_unused_chain() {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let dead1 = b.emit(BasicOp::FAdd, vec![x, x]);
        let _dead2 = b.emit(BasicOp::FMul, vec![dead1, x]);
        let live = b.emit(BasicOp::FAdd, vec![x, x]);
        let addr = b.emit(BasicOp::AddrCalc, vec![]);
        b.push_op(Op {
            basic: BasicOp::StoreFloat,
            args: vec![live, addr],
            result: None,
            mem: Some(MemRef {
                array: "a".into(),
                subscripts: vec![],
            }),
            extra_deps: vec![],
            callee: None,
        });
        let out = dce(b);
        // dead1 and dead2 removed; live add + addr + store survive. Note:
        // `live` is the same expression as dead1 but CSE is not this pass's
        // job, so it stays.
        assert_eq!(out.len(), 3);
        assert!(out.ops.iter().all(|o| o.basic != BasicOp::FMul));
    }

    #[test]
    fn dce_keeps_fully_live_block_intact() {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let s = b.emit(BasicOp::FAdd, vec![x, x]);
        let addr = b.emit(BasicOp::AddrCalc, vec![]);
        b.push_op(Op {
            basic: BasicOp::StoreFloat,
            args: vec![s, addr],
            result: None,
            mem: None,
            extra_deps: vec![],
            callee: None,
        });
        let before = b.clone();
        assert_eq!(dce(b), before);
    }

    #[test]
    fn dce_preserves_calls_and_branches() {
        let mut b = BlockIr::new();
        let r = b.add_value(ValueDef::External("r".into()));
        b.push_op(Op {
            basic: BasicOp::Call,
            args: vec![],
            result: Some(r),
            mem: None,
            extra_deps: vec![],
            callee: Some("f".into()),
        });
        let c = b.emit(BasicOp::ICmp, vec![r, r]);
        b.emit(BasicOp::BranchCond, vec![c]);
        let out = dce(b);
        assert_eq!(
            out.len(),
            3,
            "call, cmp feeding branch, and branch all live"
        );
    }

    #[test]
    fn dce_remaps_extra_deps() {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let _dead = b.emit(BasicOp::FAdd, vec![x, x]);
        let addr = b.emit(BasicOp::AddrCalc, vec![]);
        let st1 = b.push_op(Op {
            basic: BasicOp::StoreFloat,
            args: vec![x, addr],
            result: None,
            mem: Some(MemRef {
                array: "a".into(),
                subscripts: vec![],
            }),
            extra_deps: vec![],
            callee: None,
        });
        b.push_op(Op {
            basic: BasicOp::StoreFloat,
            args: vec![x, addr],
            result: None,
            mem: Some(MemRef {
                array: "a".into(),
                subscripts: vec![],
            }),
            extra_deps: vec![st1],
            callee: None,
        });
        let out = dce(b);
        assert_eq!(out.len(), 3);
        let last = out.ops.last().unwrap();
        assert_eq!(last.extra_deps.len(), 1);
        // The remapped dep must point at the first store's new position.
        assert_eq!(
            out.ops[last.extra_deps[0].0 as usize].basic,
            BasicOp::StoreFloat
        );
    }

    #[test]
    fn canonical_order_merges_commuted_emission_orders() {
        // Two emissions of `x + y` that differ only in which operand's
        // load was emitted first must canonicalize to the same op
        // sequence (same opcodes, same memory keys, position by position).
        let build = |first: &str, second: &str| -> BlockIr {
            let mut b = BlockIr::new();
            let load = |b: &mut BlockIr, name: &str| {
                let v = b.add_value(ValueDef::External(String::new()));
                b.push_op(Op {
                    basic: BasicOp::LoadFloat,
                    args: vec![],
                    result: Some(v),
                    mem: Some(MemRef {
                        array: name.into(),
                        subscripts: vec![],
                    }),
                    extra_deps: vec![],
                    callee: None,
                });
                v
            };
            let a = load(&mut b, first);
            let c = load(&mut b, second);
            let s = b.emit(BasicOp::FAdd, vec![a, c]);
            let addr = b.emit(BasicOp::AddrCalc, vec![]);
            b.push_op(Op {
                basic: BasicOp::StoreFloat,
                args: vec![s, addr],
                result: None,
                mem: Some(MemRef {
                    array: "out".into(),
                    subscripts: vec![],
                }),
                extra_deps: vec![],
                callee: None,
            });
            b
        };
        let shape = |b: &BlockIr| -> Vec<(BasicOp, Option<String>)> {
            b.ops
                .iter()
                .map(|o| (o.basic, o.mem.as_ref().map(MemRef::key)))
                .collect()
        };
        let xy = canonical_order(build("x", "y"));
        let yx = canonical_order(build("y", "x"));
        assert_eq!(shape(&xy), shape(&yx));
    }

    #[test]
    fn canonical_order_respects_memory_edges() {
        // A store followed by a dependent load must stay ordered no
        // matter what the keys say.
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        let st = b.push_op(Op {
            basic: BasicOp::StoreFloat,
            args: vec![x],
            result: None,
            mem: Some(MemRef {
                array: "a".into(),
                subscripts: vec![],
            }),
            extra_deps: vec![],
            callee: None,
        });
        let v = b.add_value(ValueDef::External(String::new()));
        b.push_op(Op {
            basic: BasicOp::LoadFloat,
            args: vec![],
            result: Some(v),
            mem: Some(MemRef {
                array: "a".into(),
                subscripts: vec![],
            }),
            extra_deps: vec![st],
            callee: None,
        });
        let out = canonical_order(b);
        let load_pos = out
            .ops
            .iter()
            .position(|o| o.basic == BasicOp::LoadFloat)
            .unwrap();
        let store_pos = out
            .ops
            .iter()
            .position(|o| o.basic == BasicOp::StoreFloat)
            .unwrap();
        assert!(store_pos < load_pos);
        assert_eq!(
            out.ops[load_pos].extra_deps,
            vec![OpId(store_pos as u32)],
            "memory edge remapped to the store's new id"
        );
    }

    #[test]
    fn unused_results_counts() {
        let mut b = BlockIr::new();
        let x = b.add_value(ValueDef::External("x".into()));
        b.emit(BasicOp::FAdd, vec![x, x]);
        assert_eq!(unused_results(&b), 1);
    }
}
