//! Process-wide hash-consing of [`BlockIr`]s into an id-keyed arena.
//!
//! Downstream memo tables (the scheduling memo in `presage-core`) key on
//! block content. Before interning, every lookup re-encoded the whole
//! block — O(block) per lookup *even on hits*. Interning assigns each
//! distinct block content a stable [`BlockId`] once, at translation time,
//! so those keys collapse to an id compare: two blocks with the same id
//! are guaranteed content-identical, and two content-identical blocks
//! interned here receive the same id.
//!
//! The arena is deliberately global (not per-thread): translated
//! [`ProgramIr`]s flow between threads — the parallel A* workers and the
//! shared translation cache both hand blocks across thread boundaries —
//! so ids must mean the same thing everywhere. Interning happens once per
//! translation (then the translation cache reuses the product), so the
//! lock is far off any hot path.
//!
//! Blocks mutated after interning drop their id automatically
//! ([`BlockIr`] clears it in every `&mut self` method), and the arena is
//! capacity-bounded: past [`INTERN_CAP`] distinct blocks, new content
//! simply stays un-interned and downstream keys fall back to full content
//! encoding. Nothing is ever evicted, so an id can never be reused for
//! different content.

use crate::ir::{BlockId, BlockIr};
use crate::program::ProgramIr;
use presage_frontend::fold::fold128;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Maximum number of distinct blocks the arena will hold. Past this,
/// [`intern_block`] returns `None` and callers key by content instead —
/// a throughput cliff, not a correctness one.
pub const INTERN_CAP: usize = 1 << 16;

/// Fixed seed for the arena's content addressing. Must be identical for
/// every producer (the arena is process-global), hence not per-thread.
const CONTENT_SEED: u64 = 0x424c_4f43_4b49_52_u64; // "BLOCKIR"

struct Arena {
    /// Content hash → candidate ids (collision bucket; full equality
    /// check resolves).
    buckets: HashMap<u128, Vec<BlockId>>,
    /// The interned blocks, indexed by [`BlockId`].
    blocks: Vec<BlockIr>,
}

fn arena() -> &'static Mutex<Arena> {
    static ARENA: OnceLock<Mutex<Arena>> = OnceLock::new();
    ARENA.get_or_init(|| {
        Mutex::new(Arena {
            buckets: HashMap::new(),
            blocks: Vec::new(),
        })
    })
}

/// Interns one block: returns its arena id, assigning a fresh one if the
/// content has not been seen before. The id is also recorded on the block
/// itself ([`BlockIr::interned_id`]) so later consumers skip the arena
/// entirely. Returns `None` only when the arena is at [`INTERN_CAP`] and
/// the content is new.
pub fn intern_block(block: &mut BlockIr) -> Option<BlockId> {
    if let Some(id) = block.interned_id() {
        return Some(id);
    }
    let mut buf = Vec::with_capacity(64 + 16 * block.len());
    block.encode_content(&mut buf);
    let key = fold128(&buf, CONTENT_SEED);
    let mut arena = arena().lock().expect("intern arena lock");
    if let Some(ids) = arena.buckets.get(&key) {
        for &id in ids {
            if arena.blocks[id.0 as usize] == *block {
                block.set_interned(id);
                return Some(id);
            }
        }
    }
    if arena.blocks.len() >= INTERN_CAP {
        return None;
    }
    let id = BlockId(arena.blocks.len() as u32);
    block.set_interned(id);
    arena.blocks.push(block.clone());
    arena.buckets.entry(key).or_default().push(id);
    Some(id)
}

/// Interns every block of a translated program in place (preheaders,
/// control blocks, bodies, postheaders, condition blocks — everything the
/// aggregator will key memo lookups on). Called by
/// [`crate::translate`] on every successful translation.
pub fn intern_program(ir: &mut ProgramIr) {
    ir.visit_blocks_mut(&mut |b| {
        intern_block(b);
    });
}

/// Number of distinct blocks currently interned (diagnostics/tests).
pub fn interned_blocks() -> usize {
    arena().lock().expect("intern arena lock").blocks.len()
}

/// A copy of the interned block for `id`, if the id is live.
pub fn lookup(id: BlockId) -> Option<BlockIr> {
    arena()
        .lock()
        .expect("intern arena lock")
        .blocks
        .get(id.0 as usize)
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::BasicOp;

    fn sample(k: i64) -> BlockIr {
        let mut b = BlockIr::new();
        let c = b.add_value(crate::ir::ValueDef::IntConst(k));
        let x = b.add_value(crate::ir::ValueDef::External("x".into()));
        b.emit(BasicOp::IAdd, vec![c, x]);
        b
    }

    #[test]
    fn equal_content_same_id() {
        let mut a = sample(7001);
        let mut b = sample(7001);
        let ia = intern_block(&mut a).unwrap();
        let ib = intern_block(&mut b).unwrap();
        assert_eq!(ia, ib);
        assert_eq!(a.interned_id(), Some(ia));
        assert_eq!(lookup(ia).unwrap(), a);
    }

    #[test]
    fn distinct_content_distinct_id() {
        let mut a = sample(7002);
        let mut b = sample(7003);
        assert_ne!(intern_block(&mut a).unwrap(), intern_block(&mut b).unwrap());
    }

    #[test]
    fn mutation_drops_id() {
        let mut a = sample(7004);
        let id = intern_block(&mut a).unwrap();
        let v = a.add_value(crate::ir::ValueDef::IntConst(1));
        assert_eq!(a.interned_id(), None, "mutation must clear the id");
        a.emit(BasicOp::IAdd, vec![v, v]);
        let id2 = intern_block(&mut a).unwrap();
        assert_ne!(id, id2);
        // The original content is still reachable under its old id.
        assert_eq!(lookup(id).unwrap(), sample(7004));
    }

    #[test]
    fn reintern_is_idempotent() {
        let mut a = sample(7005);
        let before = intern_block(&mut a).unwrap();
        let count = interned_blocks();
        assert_eq!(intern_block(&mut a).unwrap(), before);
        assert_eq!(interned_blocks(), count, "re-interning allocates nothing");
    }
}
