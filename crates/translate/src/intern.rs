//! Process-wide hash-consing of [`BlockIr`]s into an id-keyed arena.
//!
//! Downstream memo tables (the scheduling memo in `presage-core`) key on
//! block content. Before interning, every lookup re-encoded the whole
//! block — O(block) per lookup *even on hits*. Interning assigns each
//! distinct block content a [`BlockId`] once, at translation time, so
//! those keys collapse to an id compare.
//!
//! The arena is deliberately global (not per-thread): translated
//! [`ProgramIr`]s flow between threads — the parallel A* workers and the
//! shared translation cache both hand blocks across thread boundaries —
//! so ids must mean the same thing everywhere. Interning happens once per
//! translation (then the translation cache reuses the product), so the
//! lock is far off any hot path.
//!
//! # Lifecycle: reclaimed content, never-reused ids
//!
//! The arena participates in `presage_symbolic::epoch` reclamation
//! instead of growing forever. Every entry carries the generation
//! (epoch) in which its content was last interned; an epoch advance
//! drops entries retired by every worker, bounding the arena for a
//! long-lived server translating millions of distinct programs. Ids,
//! however, come from a **monotone counter and are never reused**, so:
//!
//! - equal ids imply identical content forever — a scheduling-memo key
//!   built from a stale-but-held id (inside a cached [`ProgramIr`]) can
//!   never alias a different block;
//! - the same content re-interned after reclamation simply receives a
//!   fresh id (a duplicate downstream memo entry, never a collision).
//!
//! Blocks mutated after interning drop their id automatically
//! ([`BlockIr`] clears it in every `&mut self` method). The *live* entry
//! count is additionally capped: past [`INTERN_CAP`] distinct live
//! blocks, new content stays un-interned and downstream keys fall back
//! to full content encoding until an advance frees room — a throughput
//! cliff, not a correctness one.

use crate::ir::{BlockId, BlockIr};
use crate::program::ProgramIr;
use presage_frontend::fold::fold128;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Maximum number of distinct *live* blocks the arena will hold. Past
/// this, [`intern_block`] returns `None` and callers key by content
/// instead.
pub const INTERN_CAP: usize = 1 << 16;

/// Fixed seed for the arena's content addressing. Must be identical for
/// every producer (the arena is process-global), hence not per-thread.
const CONTENT_SEED: u64 = 0x0042_4c4f_434b_4952_u64; // "BLOCKIR"

/// Cumulative count of arena entries reclaimed by epoch advances.
static RECLAIMED: AtomicUsize = AtomicUsize::new(0);

/// One live arena entry: the canonical block, its content key (so
/// reclamation can maintain the bucket index), and the generation of its
/// last intern.
struct Entry {
    block: BlockIr,
    key: u128,
    gen: u64,
}

struct Arena {
    /// Content hash → candidate ids (collision bucket; full equality
    /// check resolves). Holds live ids only.
    buckets: HashMap<u128, Vec<BlockId>>,
    /// Live interned blocks by id. Ids are handed out by `next` and never
    /// reused, so this is a map, not a dense vector.
    blocks: HashMap<u32, Entry>,
    /// Monotone id counter — the source of the never-reused guarantee.
    next: u32,
}

fn arena() -> &'static Mutex<Arena> {
    static ARENA: OnceLock<Mutex<Arena>> = OnceLock::new();
    ARENA.get_or_init(|| {
        // First use wires the arena into the epoch coordinator: every
        // advance retires entries whose generation fell behind the bound.
        presage_symbolic::epoch::register_reclaimer("blockir", reclaim_blocks);
        Mutex::new(Arena {
            buckets: HashMap::new(),
            blocks: HashMap::new(),
            next: 0,
        })
    })
}

/// Drops arena entries whose generation is strictly below `bound`;
/// returns how many were dropped. Runs under the epoch coordinator's
/// advance (between job waves).
fn reclaim_blocks(bound: u64) -> usize {
    if bound == 0 {
        return 0;
    }
    let mut arena = arena().lock().unwrap_or_else(|e| e.into_inner());
    let arena = &mut *arena;
    let before = arena.blocks.len();
    let blocks = &mut arena.blocks;
    let buckets = &mut arena.buckets;
    blocks.retain(|&raw, entry| {
        if entry.gen >= bound {
            return true;
        }
        if let Some(ids) = buckets.get_mut(&entry.key) {
            ids.retain(|id| id.0 != raw);
            if ids.is_empty() {
                buckets.remove(&entry.key);
            }
        }
        false
    });
    let freed = before - arena.blocks.len();
    RECLAIMED.fetch_add(freed, Ordering::Relaxed);
    freed
}

/// Interns one block: returns its arena id, assigning a fresh one if the
/// content has not been seen (or was reclaimed) before. The id is also
/// recorded on the block itself ([`BlockIr::interned_id`]) so later
/// consumers skip the arena entirely — that fast path stays valid across
/// reclamation because ids are never reused. Returns `None` only when
/// the arena holds [`INTERN_CAP`] live blocks and the content is new.
pub fn intern_block(block: &mut BlockIr) -> Option<BlockId> {
    if let Some(id) = block.interned_id() {
        return Some(id);
    }
    let mut buf = Vec::with_capacity(64 + 16 * block.len());
    block.encode_content(&mut buf);
    let key = fold128(&buf, CONTENT_SEED);
    let gen = presage_symbolic::epoch::current();
    let mut arena = arena().lock().unwrap_or_else(|e| e.into_inner());
    let arena = &mut *arena;
    if let Some(ids) = arena.buckets.get(&key) {
        for &id in ids {
            if let Some(entry) = arena.blocks.get_mut(&id.0) {
                if entry.block == *block {
                    // Re-stamp on hit so content in active use survives
                    // the next advance.
                    entry.gen = entry.gen.max(gen);
                    block.set_interned(id);
                    return Some(id);
                }
            }
        }
    }
    if arena.blocks.len() >= INTERN_CAP {
        return None;
    }
    let id = BlockId(arena.next);
    arena.next += 1;
    block.set_interned(id);
    arena.blocks.insert(
        id.0,
        Entry {
            block: block.clone(),
            key,
            gen,
        },
    );
    arena.buckets.entry(key).or_default().push(id);
    Some(id)
}

/// Interns every block of a translated program in place (preheaders,
/// control blocks, bodies, postheaders, condition blocks — everything the
/// aggregator will key memo lookups on). Called by
/// [`crate::translate`] on every successful translation.
pub fn intern_program(ir: &mut ProgramIr) {
    ir.visit_blocks_mut(&mut |b| {
        intern_block(b);
    });
}

/// Number of distinct blocks currently live in the arena
/// (diagnostics/tests — reclamation shrinks this).
pub fn interned_blocks() -> usize {
    arena()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .blocks
        .len()
}

/// Cumulative count of arena entries reclaimed by epoch advances
/// (soak telemetry).
pub fn reclaimed_blocks() -> usize {
    RECLAIMED.load(Ordering::Relaxed)
}

/// A copy of the interned block for `id`, if the id is live (reclaimed
/// entries return `None`; their ids remain valid as memo keys).
pub fn lookup(id: BlockId) -> Option<BlockIr> {
    arena()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .blocks
        .get(&id.0)
        .map(|e| e.block.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use presage_machine::BasicOp;

    fn sample(k: i64) -> BlockIr {
        let mut b = BlockIr::new();
        let c = b.add_value(crate::ir::ValueDef::IntConst(k));
        let x = b.add_value(crate::ir::ValueDef::External("x".into()));
        b.emit(BasicOp::IAdd, vec![c, x]);
        b
    }

    #[test]
    fn equal_content_same_id() {
        // Pin: sibling tests advance the epoch, and same-content-same-id
        // only holds while the first entry stays live.
        let _g = presage_symbolic::epoch::pin();
        let mut a = sample(7001);
        let mut b = sample(7001);
        let ia = intern_block(&mut a).unwrap();
        let ib = intern_block(&mut b).unwrap();
        assert_eq!(ia, ib);
        assert_eq!(a.interned_id(), Some(ia));
        assert_eq!(lookup(ia).unwrap(), a);
    }

    #[test]
    fn distinct_content_distinct_id() {
        let mut a = sample(7002);
        let mut b = sample(7003);
        assert_ne!(intern_block(&mut a).unwrap(), intern_block(&mut b).unwrap());
    }

    #[test]
    fn mutation_drops_id() {
        let _g = presage_symbolic::epoch::pin();
        let mut a = sample(7004);
        let id = intern_block(&mut a).unwrap();
        let v = a.add_value(crate::ir::ValueDef::IntConst(1));
        assert_eq!(a.interned_id(), None, "mutation must clear the id");
        a.emit(BasicOp::IAdd, vec![v, v]);
        let id2 = intern_block(&mut a).unwrap();
        assert_ne!(id, id2);
        // The original content is still reachable under its old id.
        assert_eq!(lookup(id).unwrap(), sample(7004));
    }

    #[test]
    fn reintern_is_idempotent() {
        let _g = presage_symbolic::epoch::pin();
        let mut a = sample(7005);
        let before = intern_block(&mut a).unwrap();
        let count = interned_blocks();
        assert_eq!(intern_block(&mut a).unwrap(), before);
        assert_eq!(interned_blocks(), count, "re-interning allocates nothing");
    }

    #[test]
    fn reclaim_retires_content_but_never_reuses_ids() {
        let mut a = sample(7100);
        let id = intern_block(&mut a).unwrap();
        // No pin held: advance until the entry retires (sibling tests'
        // short pins can hold the bound back transiently).
        for _ in 0..64 {
            presage_symbolic::epoch::advance();
            if lookup(id).is_none() {
                break;
            }
        }
        assert!(lookup(id).is_none(), "retired entry was never reclaimed");
        assert!(reclaimed_blocks() >= 1);
        // A stale-but-held id short-circuits without touching the arena —
        // still sound, because the id can never name different content.
        assert_eq!(intern_block(&mut a), Some(id));
        // Fresh same-content blocks get a *new* id: ids are never reused.
        let _g = presage_symbolic::epoch::pin();
        let mut b = sample(7100);
        let id2 = intern_block(&mut b).unwrap();
        assert_ne!(id, id2);
        assert!(id2.0 > id.0, "id counter must be monotone");
        assert_eq!(lookup(id2).unwrap(), b);
    }
}
