//! Structured operation tree mirroring the source control flow.
//!
//! The cost aggregation model (paper §2.4) walks this tree: straight-line
//! [`BlockIr`]s are costed by the placement algorithm, loops multiply their
//! body cost by a symbolic trip count, and conditionals blend branch costs
//! by probability.

use crate::ir::BlockIr;
use presage_frontend::Expr;
use std::fmt;

/// A translated subroutine.
#[derive(Clone, PartialEq, Debug)]
pub struct ProgramIr {
    /// Subroutine name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<String>,
    /// Declared arrays (name + dimension extents), in declaration order.
    /// The memory cost model and the cache simulator use these to agree
    /// on one storage layout; scalars are not listed.
    pub arrays: Vec<ArrayDecl>,
    /// Top-level nodes.
    pub root: Vec<IrNode>,
}

/// One declared array: its name and per-dimension extents as source
/// expressions (symbolic bounds like `n` stay symbolic).
#[derive(Clone, PartialEq, Debug)]
pub struct ArrayDecl {
    /// Array name.
    pub name: String,
    /// Dimension extents, leftmost (contiguous, column-major) first.
    pub dims: Vec<Expr>,
}

/// A node of the structured tree.
#[derive(Clone, PartialEq, Debug)]
pub enum IrNode {
    /// Straight-line code.
    Block(BlockIr),
    /// A counted `do` loop.
    Loop(Box<LoopIr>),
    /// A two-way conditional.
    If(Box<IfIr>),
}

/// A counted loop with the blocks the paper's model distinguishes:
/// one-time cost (preheader: bounds evaluation + hoisted invariants +
/// pre-loaded reduction cells), per-iteration control cost, the body, and
/// one-time exit cost (postheader: reduction store-back).
#[derive(Clone, PartialEq, Debug)]
pub struct LoopIr {
    /// Control variable name.
    pub var: String,
    /// Lower bound (source expression, for symbolic trip counts).
    pub lb: Expr,
    /// Upper bound.
    pub ub: Expr,
    /// Step (`None` means 1).
    pub step: Option<Expr>,
    /// One-time entry block ("Two functional bins are used to count the
    /// one-time and iterative costs separately", §2.2.2).
    pub preheader: BlockIr,
    /// Per-iteration loop control (increment, compare, conditional branch).
    pub control: BlockIr,
    /// Loop body.
    pub body: Vec<IrNode>,
    /// One-time exit block.
    pub postheader: BlockIr,
}

/// A conditional with its condition-evaluation block.
#[derive(Clone, PartialEq, Debug)]
pub struct IfIr {
    /// Condition evaluation + compare + branch operations.
    pub cond_block: BlockIr,
    /// The source condition (used for probability inference, §3.3.2).
    pub cond: Expr,
    /// Then-branch nodes.
    pub then_nodes: Vec<IrNode>,
    /// Else-branch nodes (possibly empty).
    pub else_nodes: Vec<IrNode>,
}

impl IrNode {
    /// Total number of operations in this subtree (all blocks).
    pub fn op_count(&self) -> usize {
        match self {
            IrNode::Block(b) => b.len(),
            IrNode::Loop(l) => {
                l.preheader.len()
                    + l.control.len()
                    + l.postheader.len()
                    + l.body.iter().map(IrNode::op_count).sum::<usize>()
            }
            IrNode::If(i) => {
                i.cond_block.len()
                    + i.then_nodes.iter().map(IrNode::op_count).sum::<usize>()
                    + i.else_nodes.iter().map(IrNode::op_count).sum::<usize>()
            }
        }
    }

    /// Depth-first mutable visit of every block in the subtree (same
    /// order as [`IrNode::visit_blocks`]).
    pub fn visit_blocks_mut(&mut self, f: &mut impl FnMut(&mut BlockIr)) {
        match self {
            IrNode::Block(b) => f(b),
            IrNode::Loop(l) => {
                f(&mut l.preheader);
                f(&mut l.control);
                for n in &mut l.body {
                    n.visit_blocks_mut(f);
                }
                f(&mut l.postheader);
            }
            IrNode::If(i) => {
                f(&mut i.cond_block);
                for n in &mut i.then_nodes {
                    n.visit_blocks_mut(f);
                }
                for n in &mut i.else_nodes {
                    n.visit_blocks_mut(f);
                }
            }
        }
    }

    /// Depth-first visit of every block in the subtree.
    pub fn visit_blocks<'a>(&'a self, f: &mut impl FnMut(&'a BlockIr)) {
        match self {
            IrNode::Block(b) => f(b),
            IrNode::Loop(l) => {
                f(&l.preheader);
                f(&l.control);
                for n in &l.body {
                    n.visit_blocks(f);
                }
                f(&l.postheader);
            }
            IrNode::If(i) => {
                f(&i.cond_block);
                for n in &i.then_nodes {
                    n.visit_blocks(f);
                }
                for n in &i.else_nodes {
                    n.visit_blocks(f);
                }
            }
        }
    }
}

impl ProgramIr {
    /// Total operation count over all nodes.
    pub fn op_count(&self) -> usize {
        self.root.iter().map(IrNode::op_count).sum()
    }

    /// Depth-first mutable visit of every block in the program.
    pub fn visit_blocks_mut(&mut self, f: &mut impl FnMut(&mut BlockIr)) {
        for n in &mut self.root {
            n.visit_blocks_mut(f);
        }
    }

    /// Finds the innermost loop body block of the first perfect loop nest —
    /// the "innermost basic block" the paper's Figure 7 reports on.
    pub fn innermost_block(&self) -> Option<&BlockIr> {
        fn descend(nodes: &[IrNode]) -> Option<&BlockIr> {
            for n in nodes {
                match n {
                    IrNode::Loop(l) => {
                        if let Some(b) = descend(&l.body) {
                            return Some(b);
                        }
                    }
                    IrNode::Block(b) if !b.is_empty() => return Some(b),
                    _ => {}
                }
            }
            None
        }
        // Prefer blocks inside loops; fall back to any top-level block.
        fn deepest(nodes: &[IrNode]) -> Option<&BlockIr> {
            for n in nodes {
                if let IrNode::Loop(l) = n {
                    if let Some(b) = deepest(&l.body) {
                        return Some(b);
                    }
                    return descend(&l.body);
                }
            }
            None
        }
        deepest(&self.root).or_else(|| descend(&self.root))
    }
}

impl fmt::Display for ProgramIr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "subroutine {}:", self.name)?;
        fn node(f: &mut fmt::Formatter<'_>, n: &IrNode, depth: usize) -> fmt::Result {
            let pad = "  ".repeat(depth);
            match n {
                IrNode::Block(b) => writeln!(f, "{pad}block[{} ops]", b.len()),
                IrNode::Loop(l) => {
                    writeln!(
                        f,
                        "{pad}loop {} = {}, {}{} [pre {} | ctl {} | post {}]",
                        l.var,
                        l.lb,
                        l.ub,
                        l.step
                            .as_ref()
                            .map(|s| format!(", {s}"))
                            .unwrap_or_default(),
                        l.preheader.len(),
                        l.control.len(),
                        l.postheader.len()
                    )?;
                    for c in &l.body {
                        node(f, c, depth + 1)?;
                    }
                    Ok(())
                }
                IrNode::If(i) => {
                    writeln!(f, "{pad}if {} [cond {} ops]", i.cond, i.cond_block.len())?;
                    for c in &i.then_nodes {
                        node(f, c, depth + 1)?;
                    }
                    if !i.else_nodes.is_empty() {
                        writeln!(f, "{pad}else")?;
                        for c in &i.else_nodes {
                            node(f, c, depth + 1)?;
                        }
                    }
                    Ok(())
                }
            }
        }
        for n in &self.root {
            node(f, n, 1)?;
        }
        Ok(())
    }
}
