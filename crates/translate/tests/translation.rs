//! End-to-end tests of the instruction translation module: source text in,
//! operation streams out, with each back-end imitation verified.

use presage_frontend::{parse, sema};
use presage_machine::{machines, BackendFlags, BasicOp, MachineDesc};
use presage_translate::{translate, BlockIr, IrNode, ProgramIr};

fn build(src: &str, machine: &MachineDesc) -> ProgramIr {
    let prog = parse(src).expect("parse");
    let sub = &prog.units[0];
    let symbols = sema::analyze(sub).expect("sema");
    translate(sub, &symbols, machine).expect("translate")
}

fn count_ops(block: &BlockIr, basic: BasicOp) -> usize {
    block.ops.iter().filter(|o| o.basic == basic).count()
}

fn power_no_backend_opts() -> MachineDesc {
    let mut m = machines::power_like();
    m.backend = BackendFlags {
        cse: false,
        licm: false,
        dce: false,
        fma_fusion: false,
        reduction_recognition: false,
        strength_reduction: false,
    };
    m
}

#[test]
fn axpy_inner_block_is_one_fma() {
    let ir = build(
        "subroutine axpy(y, x, a, n)
           real y(n), x(n), a
           integer i, n
           do i = 1, n
             y(i) = y(i) + a * x(i)
           end do
         end",
        &machines::power_like(),
    );
    let inner = ir.innermost_block().unwrap();
    assert_eq!(count_ops(inner, BasicOp::Fma), 1);
    assert_eq!(count_ops(inner, BasicOp::FMul), 0, "multiply fused away");
    assert_eq!(count_ops(inner, BasicOp::FAdd), 0, "add fused away");
    assert_eq!(
        count_ops(inner, BasicOp::LoadFloat),
        2,
        "loads of y(i) and x(i)... wait a is hoisted"
    );
}

#[test]
fn fma_disabled_machine_splits() {
    let ir = build(
        "subroutine axpy(y, x, a, n)
           real y(n), x(n), a
           integer i, n
           do i = 1, n
             y(i) = y(i) + a * x(i)
           end do
         end",
        &machines::risc1(),
    );
    let inner = ir.innermost_block().unwrap();
    assert_eq!(count_ops(inner, BasicOp::Fma), 0);
    assert_eq!(count_ops(inner, BasicOp::FMul), 1);
    assert_eq!(count_ops(inner, BasicOp::FAdd), 1);
}

#[test]
fn cse_shares_repeated_subexpression() {
    let ir = build(
        "subroutine s(a, b, n)
           real a(n), b(n)
           integer n
           a(1) = b(1) * b(2) + b(1) * b(2)
         end",
        &machines::power_like(),
    );
    let IrNode::Block(block) = &ir.root[0] else {
        panic!("expected block")
    };
    // b(1)*b(2) translated once; the outer add reuses it. With FMA fusion
    // the expression becomes fma(b1, b2, t) where t = b1*b2 CSE'd... the
    // fusion path recomputes operands via CSE, so exactly one FMul/Fma pair
    // of the four conceptual multiplies remains.
    let mults = count_ops(block, BasicOp::FMul) + count_ops(block, BasicOp::Fma);
    assert!(mults <= 2, "CSE failed: {block}");
    assert_eq!(
        count_ops(block, BasicOp::LoadFloat),
        2,
        "b(1), b(2) loaded once each"
    );
}

#[test]
fn cse_off_recomputes() {
    let ir = build(
        "subroutine s(a, b, n)
           real a(n), b(n)
           integer n
           a(1) = b(1) * b(2) + b(1) * b(2)
         end",
        &power_no_backend_opts(),
    );
    let IrNode::Block(block) = &ir.root[0] else {
        panic!()
    };
    assert_eq!(count_ops(block, BasicOp::FMul), 2);
    assert_eq!(count_ops(block, BasicOp::LoadFloat), 4, "every use reloads");
}

#[test]
fn store_forwards_to_subsequent_load() {
    let ir = build(
        "subroutine s(a, n)
           real a(n)
           integer n
           a(1) = 2.0
           a(2) = a(1) + 1.0
         end",
        &machines::power_like(),
    );
    let IrNode::Block(block) = &ir.root[0] else {
        panic!()
    };
    // a(1) was just stored; the load is forwarded from the register.
    assert_eq!(
        count_ops(block, BasicOp::LoadFloat),
        2,
        "constant-pool loads only (2.0 and 1.0): {block}"
    );
    assert_eq!(count_ops(block, BasicOp::StoreFloat), 2);
}

#[test]
fn licm_hoists_invariant_expression() {
    let src = "subroutine s(a, x, y, n)
       real a(n), x, y
       integer i, n
       do i = 1, n
         a(i) = a(i) * (x + y)
       end do
     end";
    let ir = build(src, &machines::power_like());
    let IrNode::Loop(l) = &ir.root[0] else {
        panic!()
    };
    // (x + y) computed once in the preheader.
    assert_eq!(count_ops(&l.preheader, BasicOp::FAdd), 1);
    let inner = ir.innermost_block().unwrap();
    assert_eq!(
        count_ops(inner, BasicOp::FAdd),
        0,
        "no per-iteration add: {inner}"
    );

    // With LICM off, the add runs every iteration.
    let ir2 = build(src, &power_no_backend_opts());
    let inner2 = ir2.innermost_block().unwrap();
    assert_eq!(count_ops(inner2, BasicOp::FAdd), 1);
}

#[test]
fn reduction_keeps_accumulator_in_register() {
    // Dot-product kernel: s-like accumulator is c(i) with k-invariant
    // subscripts — the paper's sum-reduction case.
    let src = "subroutine dot(c, a, b, n, i)
       real c(n), a(n), b(n)
       integer k, n, i
       do k = 1, n
         c(i) = c(i) + a(k) * b(k)
       end do
     end";
    let ir = build(src, &machines::power_like());
    let IrNode::Loop(l) = &ir.root[0] else {
        panic!()
    };
    let inner = ir.innermost_block().unwrap();
    assert_eq!(
        count_ops(inner, BasicOp::StoreFloat),
        0,
        "store sunk out of the loop: {inner}"
    );
    assert_eq!(
        count_ops(inner, BasicOp::LoadFloat),
        2,
        "only a(k), b(k) loaded"
    );
    assert_eq!(
        count_ops(&l.postheader, BasicOp::StoreFloat),
        1,
        "one store after the loop"
    );
    assert_eq!(
        count_ops(&l.preheader, BasicOp::LoadFloat),
        1,
        "one load before the loop"
    );

    // Disabled: load+store of c(i) every iteration.
    let ir2 = build(src, &power_no_backend_opts());
    let inner2 = ir2.innermost_block().unwrap();
    assert_eq!(count_ops(inner2, BasicOp::StoreFloat), 1);
}

#[test]
fn strength_reduction_collapses_addressing() {
    let src = "subroutine s(a, n)
       real a(n,n)
       integer i, j, n
       do i = 1, n
         do j = 1, n
           a(i,j) = 0.0
         end do
       end do
     end";
    let ir = build(src, &machines::power_like());
    let inner = ir.innermost_block().unwrap();
    assert_eq!(count_ops(inner, BasicOp::AddrCalc), 1);
    assert_eq!(
        count_ops(inner, BasicOp::IMul),
        0,
        "no per-iteration multiply: {inner}"
    );

    let ir2 = build(src, &power_no_backend_opts());
    let inner2 = ir2.innermost_block().unwrap();
    // (i-1) + (j-1)*n: two subtracts, one multiply, one add, one addrcalc.
    assert_eq!(count_ops(inner2, BasicOp::IMul), 1);
    assert_eq!(count_ops(inner2, BasicOp::ISub), 2);
}

#[test]
fn small_constant_multiply_specializes() {
    let ir = build(
        "subroutine s(k, n)
           integer k, n
           k = n * 4
           k = k * n
         end",
        &power_no_backend_opts(),
    );
    let IrNode::Block(block) = &ir.root[0] else {
        panic!()
    };
    assert_eq!(
        count_ops(block, BasicOp::IMulSmall),
        1,
        "n*4 is a small multiply"
    );
    assert_eq!(count_ops(block, BasicOp::IMul), 1, "k*n is general");
}

#[test]
fn power_of_two_division_becomes_shift() {
    let ir = build(
        "subroutine s(k, n)
           integer k, n
           k = n / 8
           k = k / 3
         end",
        &power_no_backend_opts(),
    );
    let IrNode::Block(block) = &ir.root[0] else {
        panic!()
    };
    assert_eq!(count_ops(block, BasicOp::IShift), 1);
    assert_eq!(count_ops(block, BasicOp::IDiv), 1);
}

#[test]
fn integer_power_unrolls_to_multiplies() {
    let ir = build(
        "subroutine s(x, y)
           real x, y
           y = x ** 2
           y = y + x ** 4
           y = y + x ** 7
         end",
        &power_no_backend_opts(),
    );
    let IrNode::Block(block) = &ir.root[0] else {
        panic!()
    };
    // x**2: 1, x**4: 2, x**7: 2 squarings (x4) + 3 multiplies = 5 → total 8.
    assert_eq!(count_ops(block, BasicOp::FMul), 8, "{block}");
    assert_eq!(count_ops(block, BasicOp::Call), 0);
}

#[test]
fn general_power_calls_library() {
    let ir = build(
        "subroutine s(x, y, p)
           real x, y, p
           y = x ** p
         end",
        &machines::power_like(),
    );
    let IrNode::Block(block) = &ir.root[0] else {
        panic!()
    };
    let call = block
        .ops
        .iter()
        .find(|o| o.basic == BasicOp::Call)
        .expect("pow call");
    assert_eq!(call.callee.as_deref(), Some("pow"));
}

#[test]
fn intrinsics_translate() {
    let ir = build(
        "subroutine s(x, y, i, j)
           real x, y
           integer i, j
           y = sqrt(x) + abs(x)
           i = mod(i, j)
           y = max(x, y, 2.0)
           y = sin(x)
         end",
        &power_no_backend_opts(),
    );
    let IrNode::Block(block) = &ir.root[0] else {
        panic!()
    };
    assert_eq!(count_ops(block, BasicOp::FSqrt), 1);
    assert_eq!(count_ops(block, BasicOp::FAbs), 1);
    assert_eq!(
        count_ops(block, BasicOp::IDiv),
        1,
        "integer mod lowers through divide"
    );
    assert_eq!(
        count_ops(block, BasicOp::FCmp),
        2,
        "3-way max = two compare/selects"
    );
    let sin = block
        .ops
        .iter()
        .find(|o| o.callee.as_deref() == Some("sin"));
    assert!(sin.is_some());
}

#[test]
fn conditional_structure_and_branch() {
    let ir = build(
        "subroutine s(a, n, k)
           real a(n)
           integer i, n, k
           do i = 1, n
             if (i .le. k) then
               a(i) = 0.0
             else
               a(i) = 1.0
             end if
           end do
         end",
        &machines::power_like(),
    );
    let IrNode::Loop(l) = &ir.root[0] else {
        panic!()
    };
    let IrNode::If(iff) = &l.body[0] else {
        panic!("expected If inside loop")
    };
    assert_eq!(count_ops(&iff.cond_block, BasicOp::ICmp), 1);
    assert_eq!(count_ops(&iff.cond_block, BasicOp::BranchCond), 1);
    assert_eq!(iff.then_nodes.len(), 1);
    assert_eq!(iff.else_nodes.len(), 1);
}

#[test]
fn loop_control_costs_three_ops() {
    let ir = build(
        "subroutine s(a, n)
           real a(n)
           integer i, n
           do i = 1, n
             a(i) = 0.0
           end do
         end",
        &machines::power_like(),
    );
    let IrNode::Loop(l) = &ir.root[0] else {
        panic!()
    };
    assert_eq!(l.control.len(), 3, "increment, compare, branch");
    assert_eq!(count_ops(&l.control, BasicOp::IAdd), 1);
    assert_eq!(count_ops(&l.control, BasicOp::ICmp), 1);
    assert_eq!(count_ops(&l.control, BasicOp::BranchCond), 1);
}

#[test]
fn spill_heuristic_inserts_stores() {
    // 32 distinct loads in one block on a machine with a limit of 28
    // forces at least one spill store.
    let mut body = String::new();
    for i in 1..=32 {
        body.push_str(&format!("s = s + b({i})\n"));
    }
    let src = format!("subroutine s(b, s, n)\nreal b(n), s\ninteger n\n{body}end");
    let ir = build(&src, &machines::power_like());
    let IrNode::Block(block) = &ir.root[0] else {
        panic!()
    };
    let spills = block
        .ops
        .iter()
        .filter(|o| o.basic == BasicOp::StoreFloat && o.mem.is_none())
        .count();
    assert!(spills >= 1, "expected a spill store after 28 loads");
}

#[test]
fn matmul_4x4_unrolled_has_16_fmas() {
    // The paper's Matmul row: blocked and unrolled 4×4 — 16 FMAs in the
    // innermost basic block.
    let mut body = String::new();
    for i in 0..4 {
        for j in 0..4 {
            body.push_str(&format!(
                "c(i+{i},j+{j}) = c(i+{i},j+{j}) + a(i+{i},k) * b(k,j+{j})\n"
            ));
        }
    }
    let src = format!(
        "subroutine mm(a, b, c, n, i, j)
           real a(n,n), b(n,n), c(n,n)
           integer i, j, k, n
           do k = 1, n
             {body}
           end do
         end"
    );
    let ir = build(&src, &machines::power_like());
    let inner = ir.innermost_block().unwrap();
    assert_eq!(count_ops(inner, BasicOp::Fma), 16, "{inner}");
    // All 16 c-cells are reduction cells: no c loads/stores per iteration.
    assert_eq!(count_ops(inner, BasicOp::StoreFloat), 0);
    // a(i..i+3, k) and b(k, j..j+3): 8 loads per iteration.
    assert_eq!(count_ops(inner, BasicOp::LoadFloat), 8);
}

#[test]
fn memory_dependences_order_store_load() {
    let ir = build(
        "subroutine s(a, b, n, i, j)
           real a(n), b(n)
           integer n, i, j
           a(i) = b(1)
           b(j) = a(j) + 1.0
         end",
        &power_no_backend_opts(),
    );
    let IrNode::Block(block) = &ir.root[0] else {
        panic!()
    };
    // The load of a(j) must carry a dependence edge on the store to a(i)
    // (subscripts not provably distinct).
    let load_aj = block
        .ops
        .iter()
        .find(|o| {
            o.basic == BasicOp::LoadFloat && o.mem.as_ref().is_some_and(|m| m.key() == "a[j]")
        })
        .expect("load of a(j)");
    assert!(!load_aj.extra_deps.is_empty(), "missing store->load edge");
}

#[test]
fn provably_disjoint_accesses_skip_dependence() {
    let ir = build(
        "subroutine s(a, n, i)
           real a(n)
           integer n, i
           a(i) = 1.0
           x = a(i+1)
         end",
        &power_no_backend_opts(),
    );
    let IrNode::Block(block) = &ir.root[0] else {
        panic!()
    };
    let load = block
        .ops
        .iter()
        .find(|o| {
            o.basic == BasicOp::LoadFloat && o.mem.as_ref().is_some_and(|m| m.key() == "a[(i + 1)]")
        })
        .expect("load of a(i+1)");
    assert!(
        load.extra_deps.is_empty(),
        "a(i) and a(i+1) are provably disjoint"
    );
}

#[test]
fn op_count_and_display() {
    let ir = build(
        "subroutine s(a, n)
           real a(n)
           integer i, n
           do i = 1, n
             a(i) = 0.0
           end do
         end",
        &machines::power_like(),
    );
    assert!(ir.op_count() > 0);
    let text = ir.to_string();
    assert!(text.contains("loop i"));
    assert!(text.contains("subroutine s"));
}

#[test]
fn jacobi_inner_block_shape() {
    let ir = build(
        "subroutine jacobi(a, b, n)
           real a(n,n), b(n,n)
           integer i, j, n
           do j = 2, n-1
             do i = 2, n-1
               a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
             end do
           end do
         end",
        &machines::power_like(),
    );
    let inner = ir.innermost_block().unwrap();
    assert_eq!(
        count_ops(inner, BasicOp::LoadFloat),
        4,
        "four stencil loads"
    );
    assert_eq!(count_ops(inner, BasicOp::FAdd), 3);
    assert_eq!(count_ops(inner, BasicOp::FMul), 1, "scale by 0.25");
    assert_eq!(count_ops(inner, BasicOp::StoreFloat), 1);
}

#[test]
fn scalar_reassignment_invalidates_cse() {
    // `x + 1.0` must be recomputed after x changes; and a scalar named `i`
    // must not nuke unrelated CSE entries by substring accident.
    let ir = build(
        "subroutine s(a, b, n)
           real a(n), b(n), x, y, z
           integer n
           x = b(1)
           y = x + 1.0
           x = b(2)
           z = x + 1.0
           a(1) = y + z
         end",
        &machines::power_like(),
    );
    let IrNode::Block(block) = &ir.root[0] else {
        panic!()
    };
    assert_eq!(
        count_ops(block, BasicOp::FAdd),
        3,
        "x+1 twice (different x) plus y+z: {block}"
    );
}

#[test]
fn cse_survives_unrelated_assignment() {
    // Assigning `q` must not invalidate `b(1) * b(2)`.
    let ir = build(
        "subroutine s(a, b, n)
           real a(n), b(n), q
           integer n
           a(1) = b(1) * b(2)
           q = 5.0
           a(2) = b(1) * b(2)
         end",
        &machines::power_like(),
    );
    let IrNode::Block(block) = &ir.root[0] else {
        panic!()
    };
    assert_eq!(
        count_ops(block, BasicOp::FMul),
        1,
        "shared product: {block}"
    );
}

#[test]
fn while_loop_translates_to_loop_node() {
    let ir = build(
        "subroutine s(x, eps)
           real x, eps
           do while (x .gt. eps)
             x = x * 0.5
           end do
         end",
        &machines::power_like(),
    );
    let IrNode::Loop(l) = &ir.root[0] else {
        panic!("expected Loop, got {:?}", ir.root[0])
    };
    assert!(l.var.starts_with("while$"));
    // Control block evaluates the condition: compare + branch.
    assert_eq!(count_ops(&l.control, BasicOp::FCmp), 1);
    assert_eq!(count_ops(&l.control, BasicOp::BranchCond), 1);
    assert!(l.postheader.is_empty());
}

#[test]
fn while_loop_hoists_invariants() {
    let ir = build(
        "subroutine s(x, u, v)
           real x, u, v
           do while (x .gt. u + v)
             x = x * 0.5
           end do
         end",
        &machines::power_like(),
    );
    let IrNode::Loop(l) = &ir.root[0] else {
        panic!()
    };
    // u + v is invariant: computed once in the preheader, not per
    // iteration in the control block.
    assert_eq!(count_ops(&l.preheader, BasicOp::FAdd), 1, "{}", l.preheader);
    assert_eq!(count_ops(&l.control, BasicOp::FAdd), 0, "{}", l.control);
}
