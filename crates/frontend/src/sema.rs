//! Semantic analysis: symbol tables, Fortran implicit typing, type checking.

use crate::ast::*;
use crate::diag::{FrontendError, Phase};
use crate::span::Span;
use std::collections::HashMap;

/// Information about one name in a subroutine.
#[derive(Clone, PartialEq, Debug)]
pub struct SymbolInfo {
    /// The (lower-cased) name.
    pub name: String,
    /// Resolved base type.
    pub ty: BaseType,
    /// Array dimensions (empty for scalars).
    pub dims: Vec<Expr>,
    /// Whether the name is a formal parameter.
    pub is_param: bool,
}

impl SymbolInfo {
    /// Returns `true` if the symbol is an array.
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }

    /// Number of array dimensions (0 for scalars).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }
}

/// The symbol table of one subroutine.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SymbolTable {
    symbols: HashMap<String, SymbolInfo>,
}

impl SymbolTable {
    /// Looks up a name.
    pub fn lookup(&self, name: &str) -> Option<&SymbolInfo> {
        self.symbols.get(name)
    }

    /// Returns `true` if the name is a declared array.
    pub fn is_array(&self, name: &str) -> bool {
        self.lookup(name).is_some_and(|s| s.is_array())
    }

    /// Iterates over all symbols.
    pub fn iter(&self) -> impl Iterator<Item = &SymbolInfo> {
        self.symbols.values()
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }
}

/// Fortran implicit typing: names starting with `i`–`n` are integer, all
/// others real.
pub fn implicit_type(name: &str) -> BaseType {
    match name.bytes().next() {
        Some(b'i'..=b'n') => BaseType::Integer,
        _ => BaseType::Real,
    }
}

/// Builds and checks the symbol table for a subroutine.
///
/// # Errors
///
/// Reports duplicate declarations, references to undeclared arrays,
/// subscript-count/type mismatches, non-logical conditions, non-integer
/// loop controls, and assignments between incompatible types.
pub fn analyze(sub: &Subroutine) -> Result<SymbolTable, FrontendError> {
    let mut table = SymbolTable::default();

    for decl in &sub.decls {
        for v in &decl.vars {
            if table.symbols.contains_key(&v.name) {
                return Err(FrontendError::new(
                    Phase::Sema,
                    format!("`{}` declared twice", v.name),
                    decl.span,
                ));
            }
            table.symbols.insert(
                v.name.clone(),
                SymbolInfo {
                    name: v.name.clone(),
                    ty: decl.ty,
                    dims: v.dims.clone(),
                    is_param: sub.params.contains(&v.name),
                },
            );
        }
    }
    // Parameters without declarations get implicit types.
    for p in &sub.params {
        table
            .symbols
            .entry(p.clone())
            .or_insert_with(|| SymbolInfo {
                name: p.clone(),
                ty: implicit_type(p),
                dims: Vec::new(),
                is_param: true,
            });
    }
    // Array extents must be integer expressions over known scalars.
    let extents: Vec<(Expr, Span)> = sub
        .decls
        .iter()
        .flat_map(|d| {
            d.vars
                .iter()
                .flat_map(move |v| v.dims.iter().map(move |e| (e.clone(), d.span)))
        })
        .collect();

    let mut checker = Checker {
        table,
        errors: None,
    };
    for (extent, span) in &extents {
        let ty = checker.type_of(extent, *span)?;
        if ty != BaseType::Integer {
            return Err(FrontendError::new(
                Phase::Sema,
                "array extent must be integer",
                *span,
            ));
        }
    }
    checker.stmts(&sub.body)?;
    Ok(checker.table)
}

/// Computes the type of an expression against a symbol table.
///
/// Undeclared scalar names are given their implicit type (and are *not*
/// added to the table). Undeclared array references are errors.
///
/// # Errors
///
/// Type errors as described in [`analyze`].
pub fn type_of_expr(expr: &Expr, table: &SymbolTable) -> Result<BaseType, FrontendError> {
    let mut checker = Checker {
        table: table.clone(),
        errors: None,
    };
    checker.type_of(expr, Span::default())
}

struct Checker {
    table: SymbolTable,
    // Placeholder to keep the struct open for multi-error collection.
    #[allow(dead_code)]
    errors: Option<Vec<FrontendError>>,
}

impl Checker {
    fn error(&self, msg: impl Into<String>, span: Span) -> FrontendError {
        FrontendError::new(Phase::Sema, msg, span)
    }

    fn name_type(&mut self, name: &str) -> BaseType {
        if let Some(info) = self.table.lookup(name) {
            info.ty
        } else {
            // Implicitly typed scalar: record it so later queries agree.
            let ty = implicit_type(name);
            self.table.symbols.insert(
                name.to_string(),
                SymbolInfo {
                    name: name.to_string(),
                    ty,
                    dims: Vec::new(),
                    is_param: false,
                },
            );
            ty
        }
    }

    fn type_of(&mut self, expr: &Expr, span: Span) -> Result<BaseType, FrontendError> {
        match expr {
            Expr::IntLit(_) => Ok(BaseType::Integer),
            Expr::RealLit(_) => Ok(BaseType::Real),
            Expr::LogicalLit(_) => Ok(BaseType::Logical),
            Expr::Var(name) => {
                if self.table.is_array(name) {
                    return Err(self.error(format!("array `{name}` used without subscripts"), span));
                }
                Ok(self.name_type(name))
            }
            Expr::ArrayRef { name, indices } => {
                let info = self.table.lookup(name).cloned().ok_or_else(|| {
                    self.error(
                        format!("`{name}` is not a declared array or intrinsic"),
                        span,
                    )
                })?;
                if !info.is_array() {
                    return Err(self.error(format!("`{name}` is scalar but subscripted"), span));
                }
                if info.rank() != indices.len() {
                    return Err(self.error(
                        format!(
                            "`{name}` has rank {} but {} subscripts given",
                            info.rank(),
                            indices.len()
                        ),
                        span,
                    ));
                }
                for idx in indices {
                    let t = self.type_of(idx, span)?;
                    if t != BaseType::Integer {
                        return Err(
                            self.error(format!("subscript of `{name}` must be integer"), span)
                        );
                    }
                }
                Ok(info.ty)
            }
            Expr::Unary { op, operand } => {
                let t = self.type_of(operand, span)?;
                match op {
                    UnOp::Neg => {
                        if t == BaseType::Logical {
                            Err(self.error("cannot negate a logical value", span))
                        } else {
                            Ok(t)
                        }
                    }
                    UnOp::Not => {
                        if t == BaseType::Logical {
                            Ok(BaseType::Logical)
                        } else {
                            Err(self.error("`.not.` requires a logical operand", span))
                        }
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.type_of(lhs, span)?;
                let rt = self.type_of(rhs, span)?;
                if op.is_logical() {
                    if lt == BaseType::Logical && rt == BaseType::Logical {
                        Ok(BaseType::Logical)
                    } else {
                        Err(self.error(format!("`{op}` requires logical operands"), span))
                    }
                } else if op.is_relational() {
                    if lt == BaseType::Logical || rt == BaseType::Logical {
                        Err(self.error(format!("`{op}` cannot compare logical values"), span))
                    } else {
                        Ok(BaseType::Logical)
                    }
                } else {
                    if lt == BaseType::Logical || rt == BaseType::Logical {
                        return Err(self.error(format!("`{op}` requires numeric operands"), span));
                    }
                    if lt == BaseType::Integer && rt == BaseType::Integer {
                        Ok(BaseType::Integer)
                    } else {
                        Ok(BaseType::Real)
                    }
                }
            }
            Expr::Intrinsic { func, args } => {
                for a in args {
                    let t = self.type_of(a, span)?;
                    if t == BaseType::Logical {
                        return Err(
                            self.error(format!("`{}` takes numeric arguments", func.name()), span)
                        );
                    }
                }
                let arity_ok = match func {
                    Intrinsic::Max | Intrinsic::Min => args.len() >= 2,
                    Intrinsic::Mod => args.len() == 2,
                    _ => args.len() == 1,
                };
                if !arity_ok {
                    return Err(self.error(
                        format!("wrong number of arguments to `{}`", func.name()),
                        span,
                    ));
                }
                match func {
                    Intrinsic::Sqrt
                    | Intrinsic::Exp
                    | Intrinsic::Log
                    | Intrinsic::Sin
                    | Intrinsic::Cos
                    | Intrinsic::Real => Ok(BaseType::Real),
                    Intrinsic::Int => Ok(BaseType::Integer),
                    Intrinsic::Abs => self.type_of(&args[0], span),
                    Intrinsic::Mod | Intrinsic::Max | Intrinsic::Min => {
                        let mut ty = BaseType::Integer;
                        for a in args {
                            if self.type_of(a, span)? == BaseType::Real {
                                ty = BaseType::Real;
                            }
                        }
                        Ok(ty)
                    }
                }
            }
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), FrontendError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), FrontendError> {
        match stmt {
            Stmt::Assign {
                target,
                value,
                span,
            } => {
                let tt = self.type_of(target, *span)?;
                let vt = self.type_of(value, *span)?;
                let compatible = match (tt, vt) {
                    (BaseType::Logical, BaseType::Logical) => true,
                    (BaseType::Logical, _) | (_, BaseType::Logical) => false,
                    _ => true, // numeric conversions are implicit
                };
                if !compatible {
                    return Err(self.error(format!("cannot assign {vt} to {tt}"), *span));
                }
                Ok(())
            }
            Stmt::Do {
                var,
                lb,
                ub,
                step,
                body,
                span,
            } => {
                if self.name_type(var) != BaseType::Integer {
                    return Err(self.error(format!("loop variable `{var}` must be integer"), *span));
                }
                for (what, e) in [
                    ("lower bound", Some(lb)),
                    ("upper bound", Some(ub)),
                    ("step", step.as_ref()),
                ] {
                    if let Some(e) = e {
                        if self.type_of(e, *span)? != BaseType::Integer {
                            return Err(self.error(format!("loop {what} must be integer"), *span));
                        }
                    }
                }
                if let Some(s) = step {
                    if s.as_int() == Some(0) {
                        return Err(self.error("loop step must be nonzero", *span));
                    }
                }
                self.stmts(body)
            }
            Stmt::DoWhile { cond, body, span } => {
                if self.type_of(cond, *span)? != BaseType::Logical {
                    return Err(self.error("do-while condition must be logical", *span));
                }
                self.stmts(body)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => {
                if self.type_of(cond, *span)? != BaseType::Logical {
                    return Err(self.error("if-condition must be logical", *span));
                }
                self.stmts(then_body)?;
                self.stmts(else_body)
            }
            Stmt::Call { args, span, .. } => {
                for a in args {
                    // Whole arrays pass by reference: a bare array name is
                    // legal as an actual argument.
                    if let Expr::Var(n) = a {
                        if self.table.is_array(n) {
                            continue;
                        }
                    }
                    self.type_of(a, *span)?;
                }
                Ok(())
            }
            Stmt::Return { .. } => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> Result<SymbolTable, FrontendError> {
        let p = parse(src).expect("parse");
        analyze(&p.units[0])
    }

    #[test]
    fn implicit_typing_rule() {
        assert_eq!(implicit_type("i"), BaseType::Integer);
        assert_eq!(implicit_type("n2"), BaseType::Integer);
        assert_eq!(implicit_type("x"), BaseType::Real);
        assert_eq!(implicit_type("alpha"), BaseType::Real);
    }

    #[test]
    fn declares_and_implicit() {
        let t = analyze_src("subroutine s(x, n)\nreal x(n)\ny = x(1)\nend").unwrap();
        assert!(t.is_array("x"));
        assert_eq!(t.lookup("n").unwrap().ty, BaseType::Integer);
        assert!(t.lookup("n").unwrap().is_param);
        assert_eq!(t.lookup("y").unwrap().ty, BaseType::Real);
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let e = analyze_src("subroutine s()\nreal x\ninteger x\nreturn\nend").unwrap_err();
        assert!(e.message.contains("declared twice"));
    }

    #[test]
    fn undeclared_array_rejected() {
        let e = analyze_src("subroutine s()\ny = q(1)\nend").unwrap_err();
        assert!(e.message.contains("not a declared array"));
    }

    #[test]
    fn rank_mismatch_rejected() {
        let e = analyze_src("subroutine s(a, n)\nreal a(n,n)\ny = a(1)\nend").unwrap_err();
        assert!(e.message.contains("rank 2"));
    }

    #[test]
    fn real_subscript_rejected() {
        let e = analyze_src("subroutine s(a, n)\nreal a(n)\ny = a(1.5)\nend").unwrap_err();
        assert!(e.message.contains("subscript"));
    }

    #[test]
    fn condition_must_be_logical() {
        let e = analyze_src("subroutine s(n)\nif (n) then\nend if\nend").unwrap_err();
        assert!(e.message.contains("logical"));
    }

    #[test]
    fn loop_var_must_be_integer() {
        let e = analyze_src("subroutine s(n)\ndo x = 1, n\nend do\nend").unwrap_err();
        assert!(e.message.contains("must be integer"));
    }

    #[test]
    fn zero_step_rejected() {
        let e = analyze_src("subroutine s(n)\ndo i = 1, n, 0\nend do\nend").unwrap_err();
        assert!(e.message.contains("nonzero"));
    }

    #[test]
    fn logical_assignment_mismatch() {
        let e = analyze_src("subroutine s()\nlogical f\nf = 1\nend").unwrap_err();
        assert!(e.message.contains("cannot assign"));
    }

    #[test]
    fn numeric_conversion_allowed() {
        analyze_src("subroutine s(n)\ninteger n\nx = n\nend").unwrap();
    }

    #[test]
    fn expression_types() {
        let t =
            analyze_src("subroutine s(a, n)\nreal a(n)\ninteger n, i\ny = a(i) + 1\nend").unwrap();
        let int_expr = Expr::binary(BinOp::Add, Expr::IntLit(1), Expr::Var("i".into()));
        assert_eq!(type_of_expr(&int_expr, &t).unwrap(), BaseType::Integer);
        let mixed = Expr::binary(BinOp::Mul, Expr::RealLit(2.0), Expr::Var("i".into()));
        assert_eq!(type_of_expr(&mixed, &t).unwrap(), BaseType::Real);
        let rel = Expr::binary(BinOp::Le, Expr::Var("i".into()), Expr::Var("n".into()));
        assert_eq!(type_of_expr(&rel, &t).unwrap(), BaseType::Logical);
    }

    #[test]
    fn intrinsic_types() {
        let t = SymbolTable::default();
        let sq = Expr::Intrinsic {
            func: Intrinsic::Sqrt,
            args: vec![Expr::RealLit(2.0)],
        };
        assert_eq!(type_of_expr(&sq, &t).unwrap(), BaseType::Real);
        let m = Expr::Intrinsic {
            func: Intrinsic::Mod,
            args: vec![Expr::IntLit(5), Expr::IntLit(2)],
        };
        assert_eq!(type_of_expr(&m, &t).unwrap(), BaseType::Integer);
        let mx = Expr::Intrinsic {
            func: Intrinsic::Max,
            args: vec![Expr::IntLit(5), Expr::RealLit(2.0)],
        };
        assert_eq!(type_of_expr(&mx, &t).unwrap(), BaseType::Real);
    }

    #[test]
    fn intrinsic_arity_checked() {
        let t = SymbolTable::default();
        let bad = Expr::Intrinsic {
            func: Intrinsic::Sqrt,
            args: vec![],
        };
        assert!(type_of_expr(&bad, &t).is_err());
        let bad2 = Expr::Intrinsic {
            func: Intrinsic::Max,
            args: vec![Expr::IntLit(1)],
        };
        assert!(type_of_expr(&bad2, &t).is_err());
    }

    #[test]
    fn bare_array_name_rejected_in_expr() {
        let e = analyze_src("subroutine s(a, n)\nreal a(n)\ny = a + 1\nend").unwrap_err();
        assert!(e.message.contains("without subscripts"));
    }
}
