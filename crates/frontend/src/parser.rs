//! Recursive-descent parser for the mini-Fortran language.

use crate::ast::*;
use crate::diag::{FrontendError, Phase};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Tok, Token};

/// Parses a full program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// use presage_frontend::parse;
///
/// let prog = parse(
///     "subroutine axpy(y, x, a, n)
///        real y(n), x(n), a
///        integer i, n
///        do i = 1, n
///          y(i) = y(i) + a * x(i)
///        end do
///      end",
/// ).unwrap();
/// assert_eq!(prog.units[0].name, "axpy");
/// ```
pub fn parse(src: &str) -> Result<Program, FrontendError> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.program()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> FrontendError {
        FrontendError::new(Phase::Parse, msg, self.span())
    }

    fn expect(&mut self, tok: Tok) -> Result<Token, FrontendError> {
        if *self.peek() == tok {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.peek())))
        }
    }

    /// Consumes an identifier token, returning its text.
    fn ident(&mut self) -> Result<(String, Span), FrontendError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let sp = self.span();
                self.bump();
                Ok((s, sp))
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    /// Returns `true` (without consuming) if the next token is the keyword.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    /// Consumes the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), FrontendError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn skip_newlines(&mut self) {
        while *self.peek() == Tok::Newline {
            self.bump();
        }
    }

    fn end_of_stmt(&mut self) -> Result<(), FrontendError> {
        match self.peek() {
            Tok::Newline => {
                self.bump();
                Ok(())
            }
            Tok::Eof => Ok(()),
            other => Err(self.err(format!("expected end of statement, found {other}"))),
        }
    }

    fn program(&mut self) -> Result<Program, FrontendError> {
        let mut units = Vec::new();
        self.skip_newlines();
        while *self.peek() != Tok::Eof {
            units.push(self.subroutine()?);
            self.skip_newlines();
        }
        if units.is_empty() {
            return Err(self.err("empty program: expected at least one subroutine"));
        }
        Ok(Program { units })
    }

    fn subroutine(&mut self) -> Result<Subroutine, FrontendError> {
        let start = self.span();
        self.expect_kw("subroutine")?;
        let (name, _) = self.ident()?;
        let mut params = Vec::new();
        if *self.peek() == Tok::LParen {
            self.bump();
            if *self.peek() != Tok::RParen {
                loop {
                    let (p, _) = self.ident()?;
                    params.push(p);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::RParen)?;
        }
        self.end_of_stmt()?;
        self.skip_newlines();

        let mut decls = Vec::new();
        while self.at_type_keyword() {
            decls.push(self.decl()?);
            self.skip_newlines();
        }

        let body = self.stmts()?;
        self.expect_kw("end")?;
        // Accept `end`, `end subroutine`, `end subroutine name`.
        if self.eat_kw("subroutine") {
            if let Tok::Ident(_) = self.peek() {
                self.bump();
            }
        }
        self.end_of_stmt()?;
        Ok(Subroutine {
            name,
            params,
            decls,
            body,
            span: start,
        })
    }

    fn at_type_keyword(&self) -> bool {
        self.at_kw("integer") || self.at_kw("real") || self.at_kw("logical")
    }

    fn decl(&mut self) -> Result<Decl, FrontendError> {
        let span = self.span();
        let (kw, _) = self.ident()?;
        let ty = match kw.as_str() {
            "integer" => BaseType::Integer,
            "real" => BaseType::Real,
            "logical" => BaseType::Logical,
            _ => unreachable!("guarded by at_type_keyword"),
        };
        let mut vars = Vec::new();
        loop {
            let (name, _) = self.ident()?;
            let mut dims = Vec::new();
            if *self.peek() == Tok::LParen {
                self.bump();
                loop {
                    dims.push(self.expr()?);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
            }
            vars.push(DeclVar { name, dims });
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.end_of_stmt()?;
        Ok(Decl { ty, vars, span })
    }

    /// Parses statements until an `end`/`else`/`enddo`/`endif` keyword.
    fn stmts(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        let mut out = Vec::new();
        loop {
            self.skip_newlines();
            if *self.peek() == Tok::Eof
                || self.at_kw("end")
                || self.at_kw("enddo")
                || self.at_kw("endif")
                || self.at_kw("else")
            {
                return Ok(out);
            }
            out.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> Result<Stmt, FrontendError> {
        if self.at_kw("do") {
            self.do_stmt()
        } else if self.at_kw("if") {
            self.if_stmt()
        } else if self.at_kw("call") {
            self.call_stmt()
        } else if self.at_kw("return") {
            let span = self.span();
            self.bump();
            self.end_of_stmt()?;
            Ok(Stmt::Return { span })
        } else {
            self.assign_stmt()
        }
    }

    fn do_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        self.expect_kw("do")?;
        if self.at_kw("while") {
            self.bump();
            self.expect(Tok::LParen)?;
            let cond = self.expr()?;
            self.expect(Tok::RParen)?;
            self.end_of_stmt()?;
            let body = self.stmts()?;
            if !self.eat_kw("enddo") {
                self.expect_kw("end")?;
                self.expect_kw("do")?;
            }
            self.end_of_stmt()?;
            return Ok(Stmt::DoWhile { cond, body, span });
        }
        let (var, _) = self.ident()?;
        self.expect(Tok::Assign)?;
        let lb = self.expr()?;
        self.expect(Tok::Comma)?;
        let ub = self.expr()?;
        let step = if *self.peek() == Tok::Comma {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        self.end_of_stmt()?;
        let body = self.stmts()?;
        if self.eat_kw("enddo") {
            // one-word form
        } else {
            self.expect_kw("end")?;
            self.expect_kw("do")?;
        }
        self.end_of_stmt()?;
        Ok(Stmt::Do {
            var,
            lb,
            ub,
            step,
            body,
            span,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        self.expect_kw("if")?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        if self.eat_kw("then") {
            self.end_of_stmt()?;
            self.if_tail(cond, span)
        } else {
            // One-line logical if: `if (cond) stmt`.
            let inner = self.stmt()?;
            Ok(Stmt::If {
                cond,
                then_body: vec![inner],
                else_body: Vec::new(),
                span,
            })
        }
    }

    /// Parses the body of a block `if` after its `then` line, handling
    /// `else if` chains that share a single `end if` terminator.
    fn if_tail(&mut self, cond: Expr, span: Span) -> Result<Stmt, FrontendError> {
        let then_body = self.stmts()?;
        let mut else_body = Vec::new();
        if self.eat_kw("else") {
            if self.at_kw("if") {
                // `else if (...) then`: continues the same construct; the
                // recursive tail consumes the shared `end if`.
                let span2 = self.span();
                self.expect_kw("if")?;
                self.expect(Tok::LParen)?;
                let cond2 = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect_kw("then")?;
                self.end_of_stmt()?;
                else_body.push(self.if_tail(cond2, span2)?);
                return Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                });
            }
            self.end_of_stmt()?;
            else_body = self.stmts()?;
        }
        if !self.eat_kw("endif") {
            self.expect_kw("end")?;
            self.expect_kw("if")?;
        }
        self.end_of_stmt()?;
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            span,
        })
    }

    fn call_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        self.expect_kw("call")?;
        let (name, _) = self.ident()?;
        let mut args = Vec::new();
        if *self.peek() == Tok::LParen {
            self.bump();
            if *self.peek() != Tok::RParen {
                loop {
                    args.push(self.expr()?);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::RParen)?;
        }
        self.end_of_stmt()?;
        Ok(Stmt::Call { name, args, span })
    }

    fn assign_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        let target = self.primary()?;
        match &target {
            Expr::Var(_) | Expr::ArrayRef { .. } => {}
            other => return Err(self.err(format!("cannot assign to `{other}`"))),
        }
        self.expect(Tok::Assign)?;
        let value = self.expr()?;
        self.end_of_stmt()?;
        Ok(Stmt::Assign {
            target,
            value,
            span,
        })
    }

    // --- expressions, lowest precedence first -------------------------------

    fn expr(&mut self) -> Result<Expr, FrontendError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::Or {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.not_expr()?;
        while *self.peek() == Tok::And {
            self.bump();
            let rhs = self.not_expr()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, FrontendError> {
        if *self.peek() == Tok::Not {
            self.bump();
            let operand = self.not_expr()?;
            Ok(Expr::unary(UnOp::Not, operand))
        } else {
            self.rel_expr()
        }
    }

    fn rel_expr(&mut self) -> Result<Expr, FrontendError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            Tok::EqEq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::binary(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, FrontendError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let operand = self.unary_expr()?;
                Ok(Expr::unary(UnOp::Neg, operand))
            }
            Tok::Plus => {
                self.bump();
                self.unary_expr()
            }
            _ => self.pow_expr(),
        }
    }

    fn pow_expr(&mut self) -> Result<Expr, FrontendError> {
        let base = self.primary()?;
        if *self.peek() == Tok::StarStar {
            self.bump();
            // `**` is right-associative; `a ** -b` is accepted.
            let exp = self.unary_expr()?;
            Ok(Expr::binary(BinOp::Pow, base, exp))
        } else {
            Ok(base)
        }
    }

    fn primary(&mut self) -> Result<Expr, FrontendError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::IntLit(n))
            }
            Tok::Real(x) => {
                self.bump();
                Ok(Expr::RealLit(x))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::LogicalLit(true))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::LogicalLit(false))
            }
            Tok::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            Tok::Ident(name) => {
                self.bump();
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    if let Some(func) = Intrinsic::from_name(&name) {
                        Ok(Expr::Intrinsic { func, args })
                    } else {
                        Ok(Expr::ArrayRef {
                            name,
                            indices: args,
                        })
                    }
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
    }

    fn wrap(body: &str) -> String {
        format!("subroutine t(a, b, c, n, k)\nreal a(n,n), b(n,n), c(n,n)\ninteger i, j, n, k\n{body}\nend\n")
    }

    #[test]
    fn minimal_subroutine() {
        let p = parse_ok("subroutine s()\nreturn\nend");
        assert_eq!(p.units.len(), 1);
        assert_eq!(p.units[0].name, "s");
        assert!(matches!(p.units[0].body[0], Stmt::Return { .. }));
    }

    #[test]
    fn params_and_decls() {
        let p = parse_ok("subroutine s(x, n)\nreal x(n)\ninteger n\nx(1) = 0.0\nend");
        let s = &p.units[0];
        assert_eq!(s.params, ["x", "n"]);
        assert_eq!(s.decls.len(), 2);
        assert_eq!(s.decls[0].vars[0].dims.len(), 1);
    }

    #[test]
    fn do_loop_with_step() {
        let p = parse_ok(&wrap("do i = 1, n, 2\na(i,1) = 0.0\nend do"));
        match &p.units[0].body[0] {
            Stmt::Do {
                var, step, body, ..
            } => {
                assert_eq!(var, "i");
                assert_eq!(step.as_ref().unwrap().as_int(), Some(2));
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected Do, got {other:?}"),
        }
    }

    #[test]
    fn enddo_one_word() {
        parse_ok(&wrap("do i = 1, n\na(i,1) = 0.0\nenddo"));
    }

    #[test]
    fn nested_loops() {
        let p = parse_ok(&wrap(
            "do i = 1, n\ndo j = 1, n\na(i,j) = b(i,j)\nend do\nend do",
        ));
        match &p.units[0].body[0] {
            Stmt::Do { body, .. } => assert!(matches!(body[0], Stmt::Do { .. })),
            _ => panic!(),
        }
    }

    #[test]
    fn block_if_else() {
        let p = parse_ok(&wrap(
            "if (i .le. k) then\na(i,1) = 0.0\nelse\nb(i,1) = 0.0\nend if",
        ));
        match &p.units[0].body[0] {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn endif_one_word() {
        parse_ok(&wrap("if (i .le. k) then\na(i,1) = 0.0\nendif"));
    }

    #[test]
    fn else_if_chain() {
        let p = parse_ok(&wrap(
            "if (i .lt. 1) then\na(i,1) = 0.0\nelse if (i .lt. 2) then\nb(i,1) = 0.0\nelse\nc(i,1) = 0.0\nend if",
        ));
        match &p.units[0].body[0] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn one_line_if() {
        let p = parse_ok(&wrap("if (i .gt. k) a(i,1) = 0.0"));
        match &p.units[0].body[0] {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assert_eq!(then_body.len(), 1);
                assert!(else_body.is_empty());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn call_statement() {
        let p = parse_ok(&wrap("call dgemm(a, b, n)"));
        match &p.units[0].body[0] {
            Stmt::Call { name, args, .. } => {
                assert_eq!(name, "dgemm");
                assert_eq!(args.len(), 3);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_ok(&wrap("a(1,1) = b(1,1) + c(1,1) * 2.0"));
        match &p.units[0].body[0] {
            Stmt::Assign { value, .. } => {
                assert_eq!(value.to_string(), "(b(1,1) + (c(1,1) * 2.0))");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn power_is_right_assoc_and_tight() {
        let p = parse_ok(&wrap("a(1,1) = -b(1,1) ** 2"));
        match &p.units[0].body[0] {
            Stmt::Assign { value, .. } => {
                // Fortran: -(b ** 2)
                assert_eq!(value.to_string(), "(-(b(1,1) ** 2))");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn logical_operators() {
        let p = parse_ok(&wrap("if (i .lt. n .and. .not. (j .gt. k)) a(i,j) = 0.0"));
        match &p.units[0].body[0] {
            Stmt::If { cond, .. } => {
                assert!(cond.to_string().contains(".and."));
                assert!(cond.to_string().contains(".not."));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn intrinsics_parse() {
        let p = parse_ok(&wrap("a(1,1) = sqrt(abs(b(1,1)))"));
        match &p.units[0].body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Intrinsic { func, .. } => assert_eq!(*func, Intrinsic::Sqrt),
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn multiple_subroutines() {
        let p = parse_ok("subroutine a()\nreturn\nend\n\nsubroutine b()\nreturn\nend");
        assert_eq!(p.units.len(), 2);
        assert!(p.subroutine("b").is_some());
        assert!(p.subroutine("zz").is_none());
    }

    #[test]
    fn end_subroutine_name_form() {
        parse_ok("subroutine s()\nreturn\nend subroutine s");
    }

    #[test]
    fn error_missing_end() {
        assert!(parse("subroutine s()\nx = 1\n").is_err());
    }

    #[test]
    fn error_assign_to_literal() {
        let err = parse(&wrap("1 = 2")).unwrap_err();
        assert!(err.message.contains("cannot assign"), "{err}");
    }

    #[test]
    fn error_reports_line() {
        let err = parse("subroutine s()\nx = )\nend").unwrap_err();
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn empty_program_rejected() {
        assert!(parse("\n\n").is_err());
    }
}
