//! Content hashing of the AST: a span-insensitive structural fold.
//!
//! Two consumers key memo tables by program *shape*: the scheduling memo
//! in `presage-core` (block content → placement results) and the
//! translation cache (canonical AST → translated `ProgramIr`). Both use
//! the same primitive — [`fold128`], a one-pass two-lane multiply-fold —
//! over an unambiguous byte encoding of the structure. The AST encoding
//! here deliberately skips [`crate::span::Span`]s, so re-parsed or
//! re-emitted copies of the same program hash identically: the hash is a
//! canonical identity for "the same program text modulo formatting".

use crate::ast::{Decl, Expr, Stmt, Subroutine};

/// Seed for canonical AST hashes.
///
/// Deliberately fixed (unlike the per-thread seeded scheduling-memo keys):
/// translation-cache keys are shared across threads and across
/// [`std::sync::Arc`]-held caches, so every producer must derive the same
/// key for the same program. Inputs are compiler ASTs, not
/// attacker-controlled data, so a public seed costs nothing.
pub const AST_SEED: u64 = 0x5741_4e47_3934_u64; // "WANG94"

/// One-pass two-lane multiply-fold over the key bytes, producing a
/// 128-bit content key. The lanes use independent odd multipliers plus the
/// caller's seed, so a collision needs both independently mixed 64-bit
/// halves to agree; inputs are compiler IR, not attacker-controlled, so
/// seeded SipHash strength is not required — key-hashing speed is, because
/// memo keys are recomputed on every lookup.
pub fn fold128(bytes: &[u8], seed: u64) -> u128 {
    const P1: u64 = 0x9e37_79b9_7f4a_7c15;
    const P2: u64 = 0xc2b2_ae3d_27d4_eb4f;
    let mut a = seed ^ P1;
    let mut b = seed.rotate_left(32) ^ P2;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"));
        a = (a ^ v).wrapping_mul(P1).rotate_left(29);
        b = (b ^ v.rotate_left(17)).wrapping_mul(P2).rotate_left(31);
    }
    let mut tail = bytes.len() as u64;
    for (i, &x) in chunks.remainder().iter().enumerate() {
        tail ^= (x as u64) << (8 * i + 3);
    }
    a = (a ^ tail).wrapping_mul(P1);
    b = (b ^ tail).wrapping_mul(P2);
    a ^= a >> 31;
    b ^= b >> 29;
    ((a as u128) << 64) | b as u128
}

/// Appends a length-prefixed string to the key buffer.
pub fn encode_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Appends an unambiguous byte encoding of an expression (structural
/// walk — `Expr` has no `Hash` impl, and `Display` formatting is far too
/// slow for a key that is recomputed on every lookup).
pub fn encode_expr(buf: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::IntLit(n) => {
            buf.push(0);
            buf.extend_from_slice(&n.to_le_bytes());
        }
        Expr::RealLit(x) => {
            buf.push(1);
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Expr::LogicalLit(b) => {
            buf.push(2);
            buf.push(*b as u8);
        }
        Expr::Var(name) => {
            buf.push(3);
            encode_str(buf, name);
        }
        Expr::ArrayRef { name, indices } => {
            buf.push(4);
            encode_str(buf, name);
            buf.extend_from_slice(&(indices.len() as u32).to_le_bytes());
            for i in indices {
                encode_expr(buf, i);
            }
        }
        Expr::Unary { op, operand } => {
            buf.push(5);
            buf.push(*op as u8);
            encode_expr(buf, operand);
        }
        Expr::Binary { op, lhs, rhs } => {
            buf.push(6);
            buf.push(*op as u8);
            encode_expr(buf, lhs);
            encode_expr(buf, rhs);
        }
        Expr::Intrinsic { func, args } => {
            buf.push(7);
            buf.push(*func as u8);
            buf.extend_from_slice(&(args.len() as u32).to_le_bytes());
            for a in args {
                encode_expr(buf, a);
            }
        }
    }
}

fn encode_stmts(buf: &mut Vec<u8>, stmts: &[Stmt]) {
    buf.extend_from_slice(&(stmts.len() as u32).to_le_bytes());
    for s in stmts {
        encode_stmt(buf, s);
    }
}

/// Appends a span-insensitive encoding of one statement.
fn encode_stmt(buf: &mut Vec<u8>, s: &Stmt) {
    match s {
        Stmt::Assign { target, value, .. } => {
            buf.push(0);
            encode_expr(buf, target);
            encode_expr(buf, value);
        }
        Stmt::Do {
            var,
            lb,
            ub,
            step,
            body,
            ..
        } => {
            buf.push(1);
            encode_str(buf, var);
            encode_expr(buf, lb);
            encode_expr(buf, ub);
            match step {
                None => buf.push(0),
                Some(e) => {
                    buf.push(1);
                    encode_expr(buf, e);
                }
            }
            encode_stmts(buf, body);
        }
        Stmt::DoWhile { cond, body, .. } => {
            buf.push(2);
            encode_expr(buf, cond);
            encode_stmts(buf, body);
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            buf.push(3);
            encode_expr(buf, cond);
            encode_stmts(buf, then_body);
            encode_stmts(buf, else_body);
        }
        Stmt::Call { name, args, .. } => {
            buf.push(4);
            encode_str(buf, name);
            buf.extend_from_slice(&(args.len() as u32).to_le_bytes());
            for a in args {
                encode_expr(buf, a);
            }
        }
        Stmt::Return { .. } => buf.push(5),
    }
}

fn encode_decl(buf: &mut Vec<u8>, d: &Decl) {
    buf.push(d.ty as u8);
    buf.extend_from_slice(&(d.vars.len() as u32).to_le_bytes());
    for v in &d.vars {
        encode_str(buf, &v.name);
        buf.extend_from_slice(&(v.dims.len() as u32).to_le_bytes());
        for e in &v.dims {
            encode_expr(buf, e);
        }
    }
}

/// Appends the span-insensitive encoding of a whole subroutine.
pub fn encode_subroutine(buf: &mut Vec<u8>, sub: &Subroutine) {
    encode_str(buf, &sub.name);
    buf.extend_from_slice(&(sub.params.len() as u32).to_le_bytes());
    for p in &sub.params {
        encode_str(buf, p);
    }
    buf.extend_from_slice(&(sub.decls.len() as u32).to_le_bytes());
    for d in &sub.decls {
        encode_decl(buf, d);
    }
    encode_stmts(buf, &sub.body);
}

/// Canonical 128-bit structural hash of a subroutine: every AST node and
/// name contributes, no [`crate::span::Span`] does. Parsing the same text
/// twice — or re-parsing a re-emission that reproduces the same AST —
/// yields the same hash.
pub fn subroutine_hash(sub: &Subroutine) -> u128 {
    let mut buf = Vec::with_capacity(256);
    encode_subroutine(&mut buf, sub);
    fold128(&buf, AST_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const NEST: &str = "subroutine s(a, n)
        real a(n,n)
        integer i, j, n
        do i = 1, n
          do j = 1, n
            a(i,j) = a(i,j) * 2.0 + 1.0
          end do
        end do
      end";

    #[test]
    fn hash_is_span_insensitive() {
        let a = parse(NEST).unwrap().units.remove(0);
        // Different whitespace/layout, same structure.
        let reformatted = a.to_string();
        let b = parse(&reformatted).unwrap().units.remove(0);
        assert_ne!(
            a.body[0].span(),
            b.body[0].span(),
            "spans differ across layouts"
        );
        assert_eq!(subroutine_hash(&a), subroutine_hash(&b));
    }

    #[test]
    fn hash_distinguishes_structure() {
        let a = parse(NEST).unwrap().units.remove(0);
        let mut changed = a.clone();
        // Rename the subroutine: different program, different hash.
        changed.name = "t".into();
        assert_ne!(subroutine_hash(&a), subroutine_hash(&changed));
        // Change a literal deep in the body.
        let other = parse(&NEST.replace("2.0", "3.0")).unwrap().units.remove(0);
        assert_ne!(subroutine_hash(&a), subroutine_hash(&other));
    }

    #[test]
    fn fold128_mixes_tail_bytes() {
        assert_ne!(fold128(b"abc", 0), fold128(b"abd", 0));
        assert_ne!(fold128(b"", 0), fold128(b"\0", 0));
        assert_ne!(fold128(b"12345678", 0), fold128(b"123456789", 0));
        // Seed participates.
        assert_ne!(fold128(b"abc", 0), fold128(b"abc", 1));
    }
}
