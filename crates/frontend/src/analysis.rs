//! Program-structure analysis used by the cost model.
//!
//! The paper's framework assumes "the program analysis module" provides the
//! information the cost model needs (§2.2): loop structure, loop-invariant
//! expressions, induction variables, and affine subscript shapes for the
//! memory model.

use crate::ast::{Expr, Stmt, UnOp};
use std::collections::{HashMap, HashSet};

/// Names (scalars and arrays) that may be written by a statement list.
///
/// Loop variables of contained `do` loops count as assigned; arguments of
/// `call` statements are conservatively treated as assigned (Fortran
/// call-by-reference).
pub fn assigned_names(stmts: &[Stmt]) -> HashSet<String> {
    let mut out = HashSet::new();
    collect_assigned(stmts, &mut out);
    out
}

fn collect_assigned(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::Assign { target, .. } => match target {
                Expr::Var(n) => {
                    out.insert(n.clone());
                }
                Expr::ArrayRef { name, .. } => {
                    out.insert(name.clone());
                }
                _ => {}
            },
            Stmt::Do { var, body, .. } => {
                out.insert(var.clone());
                collect_assigned(body, out);
            }
            Stmt::DoWhile { body, .. } => {
                collect_assigned(body, out);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned(then_body, out);
                collect_assigned(else_body, out);
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    match a {
                        Expr::Var(n) => {
                            out.insert(n.clone());
                        }
                        Expr::ArrayRef { name, .. } => {
                            out.insert(name.clone());
                        }
                        _ => {}
                    }
                }
            }
            Stmt::Return { .. } => {}
        }
    }
}

/// Returns `true` if `expr` is invariant with respect to a loop whose body
/// assigns `assigned` and iterates `loop_var` (§2.2.2: loop-invariant
/// expressions are hoisted and costed once).
pub fn is_invariant(expr: &Expr, loop_var: &str, assigned: &HashSet<String>) -> bool {
    let mut invariant = true;
    expr.walk(&mut |e| match e {
        Expr::Var(n) if n == loop_var || assigned.contains(n) => {
            invariant = false;
        }
        // A load from an array written in the loop may change between
        // iterations.
        Expr::ArrayRef { name, .. } if assigned.contains(name) => {
            invariant = false;
        }
        _ => {}
    });
    invariant
}

/// An affine integer form `Σ coeff_i · var_i + constant`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Affine {
    /// Per-variable integer coefficients (absent = 0).
    pub terms: HashMap<String, i64>,
    /// The constant part.
    pub constant: i64,
}

impl Affine {
    /// The coefficient of `var` (0 if absent).
    pub fn coeff(&self, var: &str) -> i64 {
        self.terms.get(var).copied().unwrap_or(0)
    }

    /// Returns `true` if the form is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.values().all(|c| *c == 0)
    }

    fn add(mut self, other: Affine, sign: i64) -> Affine {
        for (v, c) in other.terms {
            *self.terms.entry(v).or_insert(0) += sign * c;
        }
        self.constant += sign * other.constant;
        self.terms.retain(|_, c| *c != 0);
        self
    }

    fn scale(mut self, k: i64) -> Affine {
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.constant *= k;
        self.terms.retain(|_, c| *c != 0);
        self
    }
}

/// Tries to view an integer expression as an affine form over scalar
/// variables. Returns `None` for non-affine shapes (products of variables,
/// divisions, array references, intrinsics).
///
/// This powers the memory model's stride analysis and the strength-reduction
/// imitation in the translator.
pub fn affine_form(expr: &Expr) -> Option<Affine> {
    match expr {
        Expr::IntLit(n) => Some(Affine {
            terms: HashMap::new(),
            constant: *n,
        }),
        Expr::Var(n) => Some(Affine {
            terms: HashMap::from([(n.clone(), 1)]),
            constant: 0,
        }),
        Expr::Unary {
            op: UnOp::Neg,
            operand,
        } => affine_form(operand).map(|a| a.scale(-1)),
        Expr::Binary { op, lhs, rhs } => {
            use crate::ast::BinOp;
            match op {
                BinOp::Add => Some(affine_form(lhs)?.add(affine_form(rhs)?, 1)),
                BinOp::Sub => Some(affine_form(lhs)?.add(affine_form(rhs)?, -1)),
                BinOp::Mul => {
                    let l = affine_form(lhs)?;
                    let r = affine_form(rhs)?;
                    if l.is_constant() {
                        Some(r.scale(l.constant))
                    } else if r.is_constant() {
                        Some(l.scale(r.constant))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// One level of a loop nest.
#[derive(Clone, PartialEq, Debug)]
pub struct LoopHeader<'a> {
    /// Control variable.
    pub var: &'a str,
    /// Lower bound expression.
    pub lb: &'a Expr,
    /// Upper bound expression.
    pub ub: &'a Expr,
    /// Step expression (`None` = 1).
    pub step: Option<&'a Expr>,
}

/// Peels a perfect loop nest: returns the chain of loop headers and the
/// innermost body. A nest is *perfect* while each body consists of exactly
/// one nested `do`.
pub fn perfect_nest(stmt: &Stmt) -> (Vec<LoopHeader<'_>>, &[Stmt]) {
    let mut headers = Vec::new();
    let mut current = std::slice::from_ref(stmt);
    loop {
        match current {
            [Stmt::Do {
                var,
                lb,
                ub,
                step,
                body,
                ..
            }] => {
                headers.push(LoopHeader {
                    var,
                    lb,
                    ub,
                    step: step.as_ref(),
                });
                current = body;
            }
            _ => return (headers, current),
        }
    }
}

/// Statistics about the statements in a subtree, used for quick shape
/// queries (e.g. "is one branch much smaller than the other").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StmtStats {
    /// Number of assignment statements.
    pub assignments: usize,
    /// Number of loops.
    pub loops: usize,
    /// Number of conditionals.
    pub conditionals: usize,
    /// Number of call statements.
    pub calls: usize,
}

/// Computes [`StmtStats`] over a statement list.
pub fn stmt_stats(stmts: &[Stmt]) -> StmtStats {
    let mut st = StmtStats::default();
    fn go(stmts: &[Stmt], st: &mut StmtStats) {
        for s in stmts {
            match s {
                Stmt::Assign { .. } => st.assignments += 1,
                Stmt::Do { body, .. } | Stmt::DoWhile { body, .. } => {
                    st.loops += 1;
                    go(body, st);
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    st.conditionals += 1;
                    go(then_body, st);
                    go(else_body, st);
                }
                Stmt::Call { .. } => st.calls += 1,
                Stmt::Return { .. } => {}
            }
        }
    }
    go(stmts, &mut st);
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn body_of(src: &str) -> Vec<Stmt> {
        parse(src).unwrap().units.remove(0).body
    }

    impl crate::ast::Program {
        fn units_owned(self) -> Vec<crate::ast::Subroutine> {
            self.units
        }
    }

    fn first_stmt(src: &str) -> Stmt {
        parse(src).unwrap().units_owned().remove(0).body.remove(0)
    }

    #[test]
    fn assigned_names_basic() {
        let body = body_of(
            "subroutine s(a, n, k)\nreal a(n)\ndo i = 1, n\na(i) = 0.0\nif (i .lt. k) m = i\nend do\ncall f(q)\nend",
        );
        let names = assigned_names(&body);
        for expected in ["a", "i", "m", "q"] {
            assert!(names.contains(expected), "missing {expected}: {names:?}");
        }
        assert!(!names.contains("k"));
        assert!(!names.contains("n"));
    }

    #[test]
    fn invariance() {
        let assigned: HashSet<String> = ["a", "i", "t"].iter().map(|s| s.to_string()).collect();
        let n_plus_1 = Expr::binary(
            crate::ast::BinOp::Add,
            Expr::Var("n".into()),
            Expr::IntLit(1),
        );
        assert!(is_invariant(&n_plus_1, "i", &assigned));
        let uses_i = Expr::binary(
            crate::ast::BinOp::Add,
            Expr::Var("i".into()),
            Expr::IntLit(1),
        );
        assert!(!is_invariant(&uses_i, "i", &assigned));
        let loads_a = Expr::ArrayRef {
            name: "a".into(),
            indices: vec![Expr::Var("n".into())],
        };
        assert!(
            !is_invariant(&loads_a, "i", &assigned),
            "a is assigned in the loop"
        );
        let loads_b = Expr::ArrayRef {
            name: "b".into(),
            indices: vec![Expr::Var("n".into())],
        };
        assert!(is_invariant(&loads_b, "i", &assigned));
    }

    #[test]
    fn affine_linear_subscript() {
        // 2*i - j + 3
        let e = Expr::binary(
            crate::ast::BinOp::Add,
            Expr::binary(
                crate::ast::BinOp::Sub,
                Expr::binary(
                    crate::ast::BinOp::Mul,
                    Expr::IntLit(2),
                    Expr::Var("i".into()),
                ),
                Expr::Var("j".into()),
            ),
            Expr::IntLit(3),
        );
        let a = affine_form(&e).unwrap();
        assert_eq!(a.coeff("i"), 2);
        assert_eq!(a.coeff("j"), -1);
        assert_eq!(a.constant, 3);
        assert!(!a.is_constant());
    }

    #[test]
    fn affine_rejects_products_of_vars() {
        let e = Expr::binary(
            crate::ast::BinOp::Mul,
            Expr::Var("i".into()),
            Expr::Var("j".into()),
        );
        assert!(affine_form(&e).is_none());
    }

    #[test]
    fn affine_negation_and_cancellation() {
        // -(i - i) = 0
        let e = Expr::unary(
            UnOp::Neg,
            Expr::binary(
                crate::ast::BinOp::Sub,
                Expr::Var("i".into()),
                Expr::Var("i".into()),
            ),
        );
        let a = affine_form(&e).unwrap();
        assert!(a.is_constant());
        assert_eq!(a.constant, 0);
    }

    #[test]
    fn perfect_nest_extraction() {
        let s = first_stmt(
            "subroutine s(a, n)\nreal a(n,n)\ndo i = 1, n\ndo j = 1, n\na(i,j) = 0.0\nend do\nend do\nend",
        );
        let (headers, inner) = perfect_nest(&s);
        assert_eq!(headers.len(), 2);
        assert_eq!(headers[0].var, "i");
        assert_eq!(headers[1].var, "j");
        assert_eq!(inner.len(), 1);
        assert!(matches!(inner[0], Stmt::Assign { .. }));
    }

    #[test]
    fn imperfect_nest_stops_early() {
        let s = first_stmt(
            "subroutine s(a, n)\nreal a(n)\ndo i = 1, n\na(i) = 0.0\ndo j = 1, n\na(j) = 1.0\nend do\nend do\nend",
        );
        let (headers, inner) = perfect_nest(&s);
        assert_eq!(headers.len(), 1);
        assert_eq!(inner.len(), 2);
    }

    #[test]
    fn stats() {
        let body = body_of(
            "subroutine s(a, n, k)\nreal a(n)\ndo i = 1, n\nif (i .lt. k) then\na(i) = 0.0\nelse\na(i) = 1.0\nend if\nend do\ncall f(a)\nend",
        );
        let st = stmt_stats(&body);
        assert_eq!(st.loops, 1);
        assert_eq!(st.conditionals, 1);
        assert_eq!(st.assignments, 2);
        assert_eq!(st.calls, 1);
    }
}
