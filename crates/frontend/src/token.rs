//! Tokens of the mini-Fortran surface language.

use crate::span::Span;
use std::fmt;

/// A lexical token kind.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Identifier or keyword (lower-cased; keyword-ness decided by parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    StarStar,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `<` or `.lt.`
    Lt,
    /// `<=` or `.le.`
    Le,
    /// `>` or `.gt.`
    Gt,
    /// `>=` or `.ge.`
    Ge,
    /// `==` or `.eq.`
    EqEq,
    /// `/=` or `.ne.`
    Ne,
    /// `.and.`
    And,
    /// `.or.`
    Or,
    /// `.not.`
    Not,
    /// `.true.`
    True,
    /// `.false.`
    False,
    /// End of a statement (newline or `;`).
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Real(x) => write!(f, "{x}"),
            Tok::Plus => f.write_str("+"),
            Tok::Minus => f.write_str("-"),
            Tok::Star => f.write_str("*"),
            Tok::StarStar => f.write_str("**"),
            Tok::Slash => f.write_str("/"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::Comma => f.write_str(","),
            Tok::Assign => f.write_str("="),
            Tok::Lt => f.write_str(".lt."),
            Tok::Le => f.write_str(".le."),
            Tok::Gt => f.write_str(".gt."),
            Tok::Ge => f.write_str(".ge."),
            Tok::EqEq => f.write_str(".eq."),
            Tok::Ne => f.write_str(".ne."),
            Tok::And => f.write_str(".and."),
            Tok::Or => f.write_str(".or."),
            Tok::Not => f.write_str(".not."),
            Tok::True => f.write_str(".true."),
            Tok::False => f.write_str(".false."),
            Tok::Newline => f.write_str("end of line"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token paired with its source span.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// Where it came from.
    pub span: Span,
}
