//! Source locations for diagnostics.

use std::fmt;

/// A half-open byte range in the source, with the line/column of its start.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the start.
    pub line: u32,
    /// 1-based column of the start.
    pub col: u32,
}

impl Span {
    /// Builds a span.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Span {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// A span covering both inputs (keeps the earlier start position).
    pub fn to(&self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line,
            col: self.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_spans() {
        let a = Span::new(0, 3, 1, 1);
        let b = Span::new(5, 9, 1, 6);
        let j = a.to(b);
        assert_eq!((j.start, j.end), (0, 9));
        assert_eq!((j.line, j.col), (1, 1));
    }

    #[test]
    fn display() {
        assert_eq!(Span::new(0, 1, 3, 7).to_string(), "3:7");
    }
}
