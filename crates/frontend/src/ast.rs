//! Abstract syntax tree of the mini-Fortran language.

use crate::span::Span;
use std::fmt;

/// A whole translation unit: one or more subroutines.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    /// The subroutines, in source order.
    pub units: Vec<Subroutine>,
}

impl Program {
    /// Finds a subroutine by (lower-case) name.
    pub fn subroutine(&self, name: &str) -> Option<&Subroutine> {
        self.units.iter().find(|s| s.name == name)
    }
}

/// One `subroutine name(args) ... end` unit.
#[derive(Clone, PartialEq, Debug)]
pub struct Subroutine {
    /// Lower-cased name.
    pub name: String,
    /// Formal parameter names.
    pub params: Vec<String>,
    /// Type/dimension declarations.
    pub decls: Vec<Decl>,
    /// Executable statements.
    pub body: Vec<Stmt>,
    /// Source span of the header.
    pub span: Span,
}

/// Base types of the language.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BaseType {
    /// Default integer.
    Integer,
    /// Default real (modeled as 64-bit in the cost tables).
    Real,
    /// Logical (boolean).
    Logical,
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BaseType::Integer => "integer",
            BaseType::Real => "real",
            BaseType::Logical => "logical",
        })
    }
}

/// A declaration statement: `real a(n,m), x`.
#[derive(Clone, PartialEq, Debug)]
pub struct Decl {
    /// Declared base type.
    pub ty: BaseType,
    /// Declared entities.
    pub vars: Vec<DeclVar>,
    /// Source span.
    pub span: Span,
}

/// One declared entity, possibly dimensioned.
#[derive(Clone, PartialEq, Debug)]
pub struct DeclVar {
    /// Lower-cased name.
    pub name: String,
    /// Array dimensions (empty for scalars). Each extent is an expression
    /// over parameters and constants.
    pub dims: Vec<Expr>,
}

/// Executable statements.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `target = value`
    Assign {
        /// Left-hand side: a variable or array reference.
        target: Expr,
        /// Right-hand side.
        value: Expr,
        /// Source span.
        span: Span,
    },
    /// `do var = lb, ub[, step] ... end do`
    Do {
        /// Loop control variable.
        var: String,
        /// Lower bound.
        lb: Expr,
        /// Upper bound.
        ub: Expr,
        /// Optional step (defaults to 1).
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source span of the header.
        span: Span,
    },
    /// `do while (cond) ... end do` — trip count unknowable statically.
    DoWhile {
        /// Controlling condition, re-evaluated before each iteration.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source span of the header.
        span: Span,
    },
    /// `if (cond) then ... [else ...] end if` (or the one-line form).
    If {
        /// Controlling condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Source span of the header.
        span: Span,
    },
    /// `call name(args)`
    Call {
        /// Callee name (lower-cased).
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// `return`
    Return {
        /// Source span.
        span: Span,
    },
}

impl Stmt {
    /// The statement's source span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::Do { span, .. }
            | Stmt::DoWhile { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Call { span, .. }
            | Stmt::Return { span } => *span,
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)] // names are the operators
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// Returns `true` for `<, <=, >, >=, ==, /=`.
    pub fn is_relational(&self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Returns `true` for `.and.` / `.or.`.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "**",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "/=",
            BinOp::And => ".and.",
            BinOp::Or => ".or.",
        })
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
}

/// Recognized intrinsic functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)] // names are the Fortran intrinsics
pub enum Intrinsic {
    Sqrt,
    Abs,
    Max,
    Min,
    Mod,
    Exp,
    Log,
    Sin,
    Cos,
    Int,
    Real,
}

impl Intrinsic {
    /// Parses an intrinsic name (already lower-cased).
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "sqrt" => Intrinsic::Sqrt,
            "abs" => Intrinsic::Abs,
            "max" => Intrinsic::Max,
            "min" => Intrinsic::Min,
            "mod" => Intrinsic::Mod,
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "int" => Intrinsic::Int,
            "real" => Intrinsic::Real,
            _ => return None,
        })
    }

    /// The Fortran spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Abs => "abs",
            Intrinsic::Max => "max",
            Intrinsic::Min => "min",
            Intrinsic::Mod => "mod",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Int => "int",
            Intrinsic::Real => "real",
        }
    }
}

/// Expressions.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Real literal.
    RealLit(f64),
    /// Logical literal.
    LogicalLit(bool),
    /// Scalar variable reference.
    Var(String),
    /// Array element reference `name(i, j, ...)`.
    ArrayRef {
        /// Array name (lower-cased).
        name: String,
        /// Subscript expressions, innermost (fastest-varying) first.
        indices: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Intrinsic function call.
    Intrinsic {
        /// Which intrinsic.
        func: Intrinsic,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor for unary nodes.
    pub fn unary(op: UnOp, operand: Expr) -> Expr {
        Expr::Unary {
            op,
            operand: Box::new(operand),
        }
    }

    /// Returns the referenced variable name if the expression is a plain
    /// variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Expr::Var(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the constant integer value if the expression is a literal.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::IntLit(n) => Some(*n),
            Expr::Unary {
                op: UnOp::Neg,
                operand,
            } => operand.as_int().map(|n| -n),
            _ => None,
        }
    }

    /// Visits this expression and all subexpressions, outside-in.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Expr)) {
        visit(self);
        match self {
            Expr::Unary { operand, .. } => operand.walk(visit),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(visit);
                rhs.walk(visit);
            }
            Expr::ArrayRef { indices, .. } => {
                for i in indices {
                    i.walk(visit);
                }
            }
            Expr::Intrinsic { args, .. } => {
                for a in args {
                    a.walk(visit);
                }
            }
            _ => {}
        }
    }

    /// Collects the names of all variables referenced (including array names).
    pub fn referenced_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| match e {
            Expr::Var(n) => out.push(n.clone()),
            Expr::ArrayRef { name, .. } => out.push(name.clone()),
            _ => {}
        });
        out.sort();
        out.dedup();
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::IntLit(n) => write!(f, "{n}"),
            // A whole-valued real must keep its decimal point: `2.0`
            // re-emitted as `2` would re-parse as an integer literal,
            // changing the canonical AST (and its structural hash).
            Expr::RealLit(x) if x.fract() == 0.0 && x.is_finite() => write!(f, "{x:.1}"),
            Expr::RealLit(x) => write!(f, "{x}"),
            Expr::LogicalLit(b) => f.write_str(if *b { ".true." } else { ".false." }),
            Expr::Var(n) => f.write_str(n),
            Expr::ArrayRef { name, indices } => {
                write!(f, "{name}(")?;
                for (i, e) in indices.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Unary {
                op: UnOp::Neg,
                operand,
            } => write!(f, "(-{operand})"),
            Expr::Unary {
                op: UnOp::Not,
                operand,
            } => write!(f, "(.not. {operand})"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Intrinsic { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

fn write_stmts(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], depth: usize) -> fmt::Result {
    for s in stmts {
        write_stmt(f, s, depth)?;
    }
    Ok(())
}

fn write_stmt(f: &mut fmt::Formatter<'_>, stmt: &Stmt, depth: usize) -> fmt::Result {
    let pad = "  ".repeat(depth);
    match stmt {
        Stmt::Assign { target, value, .. } => writeln!(f, "{pad}{target} = {value}"),
        Stmt::Do {
            var,
            lb,
            ub,
            step,
            body,
            ..
        } => {
            write!(f, "{pad}do {var} = {lb}, {ub}")?;
            if let Some(s) = step {
                write!(f, ", {s}")?;
            }
            writeln!(f)?;
            write_stmts(f, body, depth + 1)?;
            writeln!(f, "{pad}end do")
        }
        Stmt::DoWhile { cond, body, .. } => {
            writeln!(f, "{pad}do while ({cond})")?;
            write_stmts(f, body, depth + 1)?;
            writeln!(f, "{pad}end do")
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            writeln!(f, "{pad}if ({cond}) then")?;
            write_stmts(f, then_body, depth + 1)?;
            if !else_body.is_empty() {
                writeln!(f, "{pad}else")?;
                write_stmts(f, else_body, depth + 1)?;
            }
            writeln!(f, "{pad}end if")
        }
        Stmt::Call { name, args, .. } => {
            write!(f, "{pad}call {name}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            writeln!(f, ")")
        }
        Stmt::Return { .. } => writeln!(f, "{pad}return"),
    }
}

impl fmt::Display for Stmt {
    /// Re-emits parseable source (used for transformation round-trips and
    /// multi-version code generation).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_stmt(f, self, 0)
    }
}

impl fmt::Display for Subroutine {
    /// Re-emits parseable source for the whole subroutine.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "subroutine {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        writeln!(f, ")")?;
        for d in &self.decls {
            write!(f, "  {} ", d.ty)?;
            for (i, v) in d.vars.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", v.name)?;
                if !v.dims.is_empty() {
                    write!(f, "(")?;
                    for (k, e) in v.dims.iter().enumerate() {
                        if k > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
            }
            writeln!(f)?;
        }
        write_stmts(f, &self.body, 1)?;
        writeln!(f, "end")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_int_handles_negation() {
        let e = Expr::unary(UnOp::Neg, Expr::IntLit(5));
        assert_eq!(e.as_int(), Some(-5));
        assert_eq!(Expr::Var("x".into()).as_int(), None);
    }

    #[test]
    fn referenced_names_dedup() {
        // a(i) + i + b
        let e = Expr::binary(
            BinOp::Add,
            Expr::binary(
                BinOp::Add,
                Expr::ArrayRef {
                    name: "a".into(),
                    indices: vec![Expr::Var("i".into())],
                },
                Expr::Var("i".into()),
            ),
            Expr::Var("b".into()),
        );
        assert_eq!(e.referenced_names(), ["a", "b", "i"]);
    }

    #[test]
    fn display_roundtrips_structure() {
        let e = Expr::binary(
            BinOp::Mul,
            Expr::RealLit(0.25),
            Expr::ArrayRef {
                name: "b".into(),
                indices: vec![Expr::binary(
                    BinOp::Sub,
                    Expr::Var("i".into()),
                    Expr::IntLit(1),
                )],
            },
        );
        assert_eq!(e.to_string(), "(0.25 * b((i - 1)))");
    }

    #[test]
    fn subroutine_display_roundtrips_through_parser() {
        let src = "subroutine s(a, n, k)
           real a(n,n)
           integer i, j, n, k
           do i = 1, n, 2
             if (i .le. k) then
               a(i,1) = 0.25 * a(i,1)
             else
               call f(a, i)
             end if
           end do
         end";
        let p1 = crate::parser::parse(src).unwrap();
        let emitted = p1.units[0].to_string();
        let p2 = crate::parser::parse(&emitted).unwrap();
        // Spans differ; canonical re-emission must be a fixpoint.
        assert_eq!(emitted, p2.units[0].to_string());
    }

    #[test]
    fn intrinsic_lookup() {
        assert_eq!(Intrinsic::from_name("sqrt"), Some(Intrinsic::Sqrt));
        assert_eq!(Intrinsic::from_name("foo"), None);
        assert_eq!(Intrinsic::Max.name(), "max");
    }
}
