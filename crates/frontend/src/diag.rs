//! Front-end diagnostics.

use crate::span::Span;
use std::fmt;

/// Which phase produced the diagnostic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic analysis.
    Sema,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "sema",
        })
    }
}

/// A front-end error with source position.
#[derive(Clone, PartialEq, Debug)]
pub struct FrontendError {
    /// Producing phase.
    pub phase: Phase,
    /// Human-readable message (lowercase, no trailing period).
    pub message: String,
    /// Source location.
    pub span: Span,
}

impl FrontendError {
    /// Builds an error.
    pub fn new(phase: Phase, message: impl Into<String>, span: Span) -> FrontendError {
        FrontendError {
            phase,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl std::error::Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = FrontendError::new(Phase::Parse, "expected `then`", Span::new(0, 1, 4, 9));
        assert_eq!(e.to_string(), "parse error at 4:9: expected `then`");
    }
}
