//! Lexer for the mini-Fortran surface language.
//!
//! Free-form input; `!` starts a comment; `&` at end of line continues the
//! statement; keywords and identifiers are case-insensitive and normalized
//! to lowercase; dot-operators (`.lt.`, `.and.`, …) and their symbolic
//! forms (`<`, `==`, …) are both accepted.

use crate::diag::{FrontendError, Phase};
use crate::span::Span;
use crate::token::{Tok, Token};

/// Tokenizes `src` into a token stream ending with [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`FrontendError`] for unknown characters, malformed numbers,
/// or unterminated dot-operators.
pub fn lex(src: &str) -> Result<Vec<Token>, FrontendError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn here(&self) -> Span {
        Span::new(self.pos, self.pos + 1, self.line, self.col)
    }

    fn err(&self, msg: impl Into<String>) -> FrontendError {
        FrontendError::new(Phase::Lex, msg, self.here())
    }

    fn push(&mut self, tok: Tok, span: Span) {
        self.out.push(Token { tok, span });
    }

    fn run(mut self) -> Result<Vec<Token>, FrontendError> {
        while self.pos < self.src.len() {
            let c = self.peek();
            match c {
                b' ' | b'\t' | b'\r' => {
                    self.bump();
                }
                b'!' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'&' => {
                    // Continuation: swallow the `&`, trailing space/comment,
                    // and the newline itself.
                    self.bump();
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        let d = self.peek();
                        if d == b' ' || d == b'\t' || d == b'\r' {
                            self.bump();
                        } else if d == b'!' {
                            while self.pos < self.src.len() && self.peek() != b'\n' {
                                self.bump();
                            }
                        } else {
                            return Err(self.err("only spaces or a comment may follow `&`"));
                        }
                    }
                    if self.pos < self.src.len() {
                        self.bump(); // the newline
                    }
                }
                b'\n' | b';' => {
                    let span = self.here();
                    self.bump();
                    // Collapse consecutive statement separators.
                    if !matches!(self.out.last().map(|t| &t.tok), Some(Tok::Newline) | None) {
                        self.push(Tok::Newline, span);
                    }
                }
                b'0'..=b'9' => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                b'.' => {
                    if self.peek2().is_ascii_digit() {
                        self.number()?;
                    } else {
                        self.dot_operator()?;
                    }
                }
                _ => self.symbol()?,
            }
        }
        if !matches!(self.out.last().map(|t| &t.tok), Some(Tok::Newline) | None) {
            self.push(Tok::Newline, self.here());
        }
        let span = self.here();
        self.push(Tok::Eof, span);
        Ok(self.out)
    }

    fn ident(&mut self) {
        let start = self.pos;
        let span0 = self.here();
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .expect("ASCII identifier")
            .to_ascii_lowercase();
        let span = Span::new(start, self.pos, span0.line, span0.col);
        self.push(Tok::Ident(text), span);
    }

    fn number(&mut self) -> Result<(), FrontendError> {
        let start = self.pos;
        let span0 = self.here();
        let mut is_real = false;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        // Fraction — but `1.lt.2` must not eat the dot of `.lt.`.
        if self.peek() == b'.' && !self.peek2().is_ascii_alphabetic() {
            is_real = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        // Exponent: e/d (Fortran double) with optional sign.
        if matches!(self.peek(), b'e' | b'E' | b'd' | b'D')
            && (self.peek2().is_ascii_digit()
                || ((self.peek2() == b'+' || self.peek2() == b'-')
                    && self
                        .src
                        .get(self.pos + 2)
                        .is_some_and(|c| c.is_ascii_digit())))
        {
            is_real = true;
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ASCII number");
        let span = Span::new(start, self.pos, span0.line, span0.col);
        if is_real {
            let normalized = text.replace(['d', 'D'], "e");
            let v: f64 = normalized.parse().map_err(|_| {
                FrontendError::new(Phase::Lex, format!("malformed real literal `{text}`"), span)
            })?;
            self.push(Tok::Real(v), span);
        } else {
            let v: i64 = text.parse().map_err(|_| {
                FrontendError::new(
                    Phase::Lex,
                    format!("integer literal `{text}` out of range"),
                    span,
                )
            })?;
            self.push(Tok::Int(v), span);
        }
        Ok(())
    }

    fn dot_operator(&mut self) -> Result<(), FrontendError> {
        let start = self.pos;
        let span0 = self.here();
        self.bump(); // the leading dot
        let word_start = self.pos;
        while self.peek().is_ascii_alphabetic() {
            self.bump();
        }
        if self.peek() != b'.' {
            return Err(FrontendError::new(
                Phase::Lex,
                "unterminated dot-operator (expected `.op.`)",
                Span::new(start, self.pos, span0.line, span0.col),
            ));
        }
        let word = std::str::from_utf8(&self.src[word_start..self.pos])
            .expect("ASCII word")
            .to_ascii_lowercase();
        self.bump(); // the trailing dot
        let span = Span::new(start, self.pos, span0.line, span0.col);
        let tok = match word.as_str() {
            "lt" => Tok::Lt,
            "le" => Tok::Le,
            "gt" => Tok::Gt,
            "ge" => Tok::Ge,
            "eq" => Tok::EqEq,
            "ne" => Tok::Ne,
            "and" => Tok::And,
            "or" => Tok::Or,
            "not" => Tok::Not,
            "true" => Tok::True,
            "false" => Tok::False,
            _ => {
                return Err(FrontendError::new(
                    Phase::Lex,
                    format!("unknown dot-operator `.{word}.`"),
                    span,
                ))
            }
        };
        self.push(tok, span);
        Ok(())
    }

    fn symbol(&mut self) -> Result<(), FrontendError> {
        let span0 = self.here();
        let c = self.bump();
        let two = |l: &mut Lexer<'a>, next: u8| -> bool {
            if l.peek() == next {
                l.bump();
                true
            } else {
                false
            }
        };
        let tok = match c {
            b'+' => Tok::Plus,
            b'-' => Tok::Minus,
            b'*' => {
                if two(self, b'*') {
                    Tok::StarStar
                } else {
                    Tok::Star
                }
            }
            b'/' => {
                if two(self, b'=') {
                    Tok::Ne
                } else {
                    Tok::Slash
                }
            }
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b',' => Tok::Comma,
            b'=' => {
                if two(self, b'=') {
                    Tok::EqEq
                } else {
                    Tok::Assign
                }
            }
            b'<' => {
                if two(self, b'=') {
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            b'>' => {
                if two(self, b'=') {
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            other => {
                return Err(FrontendError::new(
                    Phase::Lex,
                    format!("unexpected character `{}`", other as char),
                    span0,
                ))
            }
        };
        let span = Span::new(span0.start, self.pos, span0.line, span0.col);
        self.push(tok, span);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(
            kinds("x = a + 1"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Ident("a".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn case_insensitive_idents() {
        assert_eq!(kinds("DO")[0], Tok::Ident("do".into()));
    }

    #[test]
    fn real_literals() {
        assert_eq!(kinds("0.25")[0], Tok::Real(0.25));
        assert_eq!(kinds("1e3")[0], Tok::Real(1000.0));
        assert_eq!(kinds("2.5d0")[0], Tok::Real(2.5));
        assert_eq!(kinds("1.5e-2")[0], Tok::Real(0.015));
        assert_eq!(kinds(".5")[0], Tok::Real(0.5));
    }

    #[test]
    fn integer_vs_dot_operator() {
        // `1.lt.2` must lex as Int(1) .lt. Int(2), not Real(1.).
        assert_eq!(kinds("1.lt.2")[..3], [Tok::Int(1), Tok::Lt, Tok::Int(2)]);
    }

    #[test]
    fn dot_operators() {
        assert_eq!(
            kinds("a .le. b .and. .not. c")
                .into_iter()
                .filter(|t| matches!(t, Tok::Le | Tok::And | Tok::Not))
                .count(),
            3
        );
    }

    #[test]
    fn symbolic_relationals() {
        assert_eq!(kinds("a <= b")[1], Tok::Le);
        assert_eq!(kinds("a == b")[1], Tok::EqEq);
        assert_eq!(kinds("a /= b")[1], Tok::Ne);
        assert_eq!(kinds("a ** b")[1], Tok::StarStar);
    }

    #[test]
    fn comments_ignored() {
        assert_eq!(
            kinds("x = 1 ! set x\ny = 2"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Newline,
                Tok::Ident("y".into()),
                Tok::Assign,
                Tok::Int(2),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn continuation() {
        assert_eq!(
            kinds("x = a + &\n    b"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Ident("a".into()),
                Tok::Plus,
                Tok::Ident("b".into()),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn blank_lines_collapse() {
        let ks = kinds("a = 1\n\n\nb = 2");
        let newlines = ks.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn semicolon_separates() {
        let ks = kinds("a = 1; b = 2");
        let newlines = ks.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn unknown_char_errors() {
        let err = lex("a = #").unwrap_err();
        assert!(err.message.contains('#'));
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn unknown_dot_operator_errors() {
        assert!(lex("a .xor. b").is_err());
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("a = 1\nbb = 2").unwrap();
        let bb = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("bb".into()))
            .unwrap();
        assert_eq!(bb.span.line, 2);
        assert_eq!(bb.span.col, 1);
    }
}
