//! AST-level structural normalization: canonical program identity
//! without printing or re-lexing source.
//!
//! The optimizer historically canonicalized every program variant by
//! re-emitting its source and re-parsing it — re-emission normalizes
//! formatting, re-parsing normalizes the handful of AST shapes that
//! print identically. That round trip is the hot path of the
//! transformation search, and all of its normalizing effects are
//! mirrorable on the AST directly. [`normalize`] is that mirror, plus
//! the structural identities the textual pipeline cannot see:
//!
//! * **Parser-image folding** — the shapes the parser can never produce
//!   are rewritten to the shapes it does: negated numeric literals fold
//!   into signed literals (`Unary(Neg, IntLit(3))` → `IntLit(-3)`; the
//!   parser has no negative-literal token), array references whose name
//!   is an intrinsic become [`Intrinsic`] calls (the parser resolves
//!   `name(args)` through [`Intrinsic::from_name`] unconditionally), and
//!   names are lower-cased (the lexer lower-cases every identifier).
//! * **Commutative-operand ordering** — operands of `+`, `*`, `max`,
//!   and `min` sort under a total structural order, so `a + b` and
//!   `b + a` share a hash. Operand order never reaches the scheduler:
//!   both sides translate to the same operation with the same
//!   dependences.
//! * **Alpha-canonicalization** — loop induction variables rename to
//!   positional fresh names (`\u{1}l0`, `\u{1}l1`, … in preorder; the
//!   `\u{1}` prefix is unlexable, so canonical names cannot collide
//!   with program names). Induction-variable names never appear in a
//!   cost expression — trip counts come from the bounds — so two
//!   loops differing only in index naming cost the same.
//!
//! No *cost-relevant* structure is touched: constants are not folded
//! (`1 + 2` translates to a real add), unit steps are not elided (an
//! explicit step is evaluated in the loop preheader), and declaration
//! order is preserved.
//!
//! [`validate_emittable`] is the companion predicate: it accepts
//! exactly the subroutines whose re-emitted source parses back, so the
//! structural pipeline rejects the same unrepresentable variants the
//! textual round trip rejected — without materializing the string. The
//! differential suite (`tests/normalize_differential.rs` at the
//! workspace root) proves both claims against the textual oracle over
//! the whole transform corpus.

use crate::ast::{BinOp, Decl, DeclVar, Expr, Intrinsic, Stmt, Subroutine, UnOp};
use crate::diag::{FrontendError, Phase};
use crate::fold::{encode_expr, encode_str, fold128, AST_SEED};
use crate::span::Span;
use std::collections::{HashMap, HashSet};

/// Statement-leading keywords: an assignment whose target starts with
/// one of these re-parses as that statement form, not as an assignment.
const STMT_KEYWORDS: [&str; 8] = [
    "do", "if", "call", "return", "end", "enddo", "endif", "else",
];

/// Returns the normalized copy of `sub`: parser-image folding,
/// commutative-operand ordering, and alpha-canonical loop variables.
/// Spans are preserved (they never reach the hash).
pub fn normalize(sub: &Subroutine) -> Subroutine {
    let mut n = Normalizer {
        scopes: Vec::new(),
        next_loop: 0,
        first_canon: std::collections::HashMap::new(),
    };
    // Body first: it decides which declared names were loop variables.
    let body = n.stmts(&sub.body);
    let decls = sub.decls.iter().map(|d| n.decl(d, &body)).collect();
    Subroutine {
        name: sub.name.to_ascii_lowercase(),
        params: sub.params.iter().map(|p| p.to_ascii_lowercase()).collect(),
        decls,
        body,
        span: sub.span,
    }
}

/// Canonical 128-bit structural hash: [`crate::fold::subroutine_hash`]
/// of the [`normalize`]d AST. Two subroutines share this hash exactly
/// when they normalize to the same shape — the same equivalence the
/// re-emit+re-parse key induces, refined by commutativity and loop-name
/// independence.
///
/// Computed by *streaming* the normalized encoding straight off the
/// input AST: no normalized copy is materialized and no name is
/// re-allocated, so the hash costs one walk plus the fold. The result
/// is byte-for-byte the fold of `encode_subroutine(&normalize(sub))` —
/// `streaming_hash_matches_normalize_then_hash` pins that equality, and
/// the differential suite exercises it over the transform corpus.
pub fn structural_hash(sub: &Subroutine) -> u128 {
    let mut h = StreamHasher::default();
    // Body first: it decides which declared names were loop variables.
    let mut body = Vec::with_capacity(1024);
    h.stmts(&sub.body, &mut body);
    h.emitted_frozen = true;
    let mut buf = Vec::with_capacity(body.len() + 128);
    encode_lower_str(&mut buf, &sub.name);
    buf.extend_from_slice(&(sub.params.len() as u32).to_le_bytes());
    for p in &sub.params {
        encode_lower_str(&mut buf, p);
    }
    buf.extend_from_slice(&(sub.decls.len() as u32).to_le_bytes());
    for d in &sub.decls {
        h.decl(d, &mut buf);
    }
    buf.extend_from_slice(&body);
    fold128(&buf, AST_SEED)
}

struct Normalizer {
    /// Innermost-last stack of (source loop variable, canonical name).
    scopes: Vec<(String, String)>,
    next_loop: usize,
    /// First canonical name each source loop variable renamed to.
    first_canon: std::collections::HashMap<String, String>,
}

impl Normalizer {
    /// Normalizes one declaration against the already-normalized body.
    /// A scalar entry declaring a loop variable follows the rename —
    /// but only when no free use of the name survives in the body
    /// (after renaming, a leftover use means the name also lives
    /// outside loop scopes, where it is not alpha-convertible).
    fn decl(&mut self, d: &Decl, body: &[Stmt]) -> Decl {
        Decl {
            ty: d.ty,
            vars: d
                .vars
                .iter()
                .map(|v| {
                    let lower = v.name.to_ascii_lowercase();
                    let name = match self.first_canon.get(&lower) {
                        Some(canon) if v.dims.is_empty() && !name_in_use(body, &lower) => {
                            canon.clone()
                        }
                        _ => lower,
                    };
                    DeclVar {
                        name,
                        dims: v.dims.iter().map(|e| self.expr(e)).collect(),
                    }
                })
                .collect(),
            span: d.span,
        }
    }

    fn stmts(&mut self, body: &[Stmt]) -> Vec<Stmt> {
        body.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, s: &Stmt) -> Stmt {
        match s {
            Stmt::Assign {
                target,
                value,
                span,
            } => Stmt::Assign {
                target: self.expr(target),
                value: self.expr(value),
                span: *span,
            },
            Stmt::Do {
                var,
                lb,
                ub,
                step,
                body,
                span,
            } => {
                // Bounds are evaluated outside the loop's scope.
                let lb = self.expr(lb);
                let ub = self.expr(ub);
                let step = step.as_ref().map(|e| self.expr(e));
                let canon = format!("\u{1}l{}", self.next_loop);
                self.next_loop += 1;
                let lower = var.to_ascii_lowercase();
                self.first_canon
                    .entry(lower.clone())
                    .or_insert_with(|| canon.clone());
                self.scopes.push((lower, canon.clone()));
                let body = self.stmts(body);
                self.scopes.pop();
                Stmt::Do {
                    var: canon,
                    lb,
                    ub,
                    step,
                    body,
                    span: *span,
                }
            }
            Stmt::DoWhile { cond, body, span } => Stmt::DoWhile {
                cond: self.expr(cond),
                body: self.stmts(body),
                span: *span,
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => Stmt::If {
                cond: self.expr(cond),
                then_body: self.stmts(then_body),
                else_body: self.stmts(else_body),
                span: *span,
            },
            Stmt::Call { name, args, span } => Stmt::Call {
                name: name.to_ascii_lowercase(),
                args: args.iter().map(|a| self.expr(a)).collect(),
                span: *span,
            },
            Stmt::Return { span } => Stmt::Return { span: *span },
        }
    }

    /// Canonical name for a scalar reference: the innermost enclosing
    /// loop variable of that name, else the (lower-cased) name itself.
    fn scalar_name(&self, name: &str) -> String {
        let lower = name.to_ascii_lowercase();
        self.scopes
            .iter()
            .rev()
            .find(|(src, _)| *src == lower)
            .map(|(_, canon)| canon.clone())
            .unwrap_or(lower)
    }

    fn expr(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::IntLit(_) | Expr::RealLit(_) | Expr::LogicalLit(_) => e.clone(),
            Expr::Var(name) => Expr::Var(self.scalar_name(name)),
            Expr::ArrayRef { name, indices } => {
                let name = name.to_ascii_lowercase();
                let indices: Vec<Expr> = indices.iter().map(|i| self.expr(i)).collect();
                // The parser resolves `name(args)` through the intrinsic
                // table before considering an array reference.
                match Intrinsic::from_name(&name) {
                    Some(func) => Expr::Intrinsic {
                        func,
                        args: sort_commutative_args(func, indices),
                    },
                    None => Expr::ArrayRef { name, indices },
                }
            }
            Expr::Unary { op, operand } => {
                let operand = self.expr(operand);
                match (op, operand) {
                    // The parser has no negative-literal token: `-3`
                    // always parses as Neg(IntLit(3)). Fold toward the
                    // signed literal so both shapes hash identically.
                    // (i64::MIN stays unfolded: its magnitude has no
                    // i64 representation.)
                    (UnOp::Neg, Expr::IntLit(k)) if k != i64::MIN => Expr::IntLit(-k),
                    (UnOp::Neg, Expr::RealLit(x)) => Expr::RealLit(-x),
                    (op, operand) => Expr::unary(*op, operand),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lhs = self.expr(lhs);
                let rhs = self.expr(rhs);
                let (lhs, rhs) = if commutes(*op) && encoded(&rhs) < encoded(&lhs) {
                    (rhs, lhs)
                } else {
                    (lhs, rhs)
                };
                Expr::binary(*op, lhs, rhs)
            }
            Expr::Intrinsic { func, args } => {
                let args: Vec<Expr> = args.iter().map(|a| self.expr(a)).collect();
                Expr::Intrinsic {
                    func: *func,
                    args: sort_commutative_args(*func, args),
                }
            }
        }
    }
}

/// `+` and `*` translate to one operation whose dependences ignore
/// operand order, so sorting the operands is cost-neutral.
fn commutes(op: BinOp) -> bool {
    matches!(op, BinOp::Add | BinOp::Mul)
}

/// Two-argument `max`/`min` are symmetric; other intrinsics (and other
/// arities) keep their argument order.
fn sort_commutative_args(func: Intrinsic, mut args: Vec<Expr>) -> Vec<Expr> {
    if matches!(func, Intrinsic::Max | Intrinsic::Min)
        && args.len() == 2
        && encoded(&args[1]) < encoded(&args[0])
    {
        args.swap(0, 1);
    }
    args
}

/// Canonical encoding of an already-normalized expression — the sort
/// key for commutative operands. Any total, deterministic order works
/// here; the encoding order is chosen because [`StreamHasher`] has the
/// same bytes in hand and compares them in place, so both pipelines
/// pick the same operand order (and therefore the same hash) for free.
/// This reference path re-encodes on demand; it is off the search hot
/// path.
fn encoded(e: &Expr) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    encode_expr(&mut buf, e);
    buf
}

/// Appends a length-prefixed, ASCII-lower-cased string without
/// allocating the lowered copy. Byte-identical to
/// `encode_str(out, &s.to_ascii_lowercase())`.
fn encode_lower_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend(s.bytes().map(|b| b.to_ascii_lowercase()));
}

/// Lower-cases `name` into `tmp` only when it contains upper-case
/// ASCII; the parser lower-cases every identifier, so the borrow fast
/// path is the common one.
fn lower_tmp<'a>(name: &'a str, tmp: &'a mut String) -> &'a str {
    if name.bytes().any(|b| b.is_ascii_uppercase()) {
        tmp.clear();
        tmp.extend(name.chars().map(|c| c.to_ascii_lowercase()));
        tmp
    } else {
        name
    }
}

/// The literal an expression normalizes to, if any — the streaming
/// image of the [`Normalizer`]'s negated-literal cascade (`-(-(3))`
/// folds to `3`, but `-i64::MIN` has no representation and the cascade
/// stops there).
enum NormLit {
    /// Normalizes to `Expr::IntLit` of this value.
    Int(i64),
    /// Normalizes to `Expr::RealLit` of this value.
    Real(f64),
}

fn norm_literal(e: &Expr) -> Option<NormLit> {
    match e {
        Expr::IntLit(n) => Some(NormLit::Int(*n)),
        Expr::RealLit(x) => Some(NormLit::Real(*x)),
        Expr::Unary {
            op: UnOp::Neg,
            operand,
        } => match norm_literal(operand)? {
            NormLit::Int(k) if k != i64::MIN => Some(NormLit::Int(-k)),
            NormLit::Int(_) => None,
            NormLit::Real(x) => Some(NormLit::Real(-x)),
        },
        _ => None,
    }
}

/// Streaming mirror of [`Normalizer`]: emits the fold encoding of the
/// normalized subroutine directly, without building the normalized
/// AST. Every rule here must stay in lockstep with its twin in
/// [`Normalizer`]; `streaming_hash_matches_normalize_then_hash` and
/// the workspace differential suite pin the byte equality.
#[derive(Default)]
struct StreamHasher {
    /// Innermost-last stack of (source loop variable, canonical name).
    scopes: Vec<(String, String)>,
    next_loop: usize,
    /// First canonical name each source loop variable renamed to.
    first_canon: HashMap<String, String>,
    /// Every name emitted into the body encoding — the streaming image
    /// of [`name_in_use`] over the normalized body. Frozen once the
    /// body is done: [`name_in_use`] never looks at declaration
    /// dimensions, so names streamed there must not join the set.
    emitted: HashSet<String>,
    /// Set after the body pass; stops [`Self::note_emitted`].
    emitted_frozen: bool,
    /// Reusable scratch buffers for commutative-operand comparison.
    pool: Vec<Vec<u8>>,
}

impl StreamHasher {
    /// Records a body-emitted name for the [`name_in_use`] mirror.
    fn note_emitted(&mut self, name: &str) {
        if !self.emitted_frozen && !self.emitted.contains(name) {
            self.emitted.insert(name.to_string());
        }
    }

    /// [`note_emitted`](Self::note_emitted) of the lower-cased name.
    fn note_emitted_lower(&mut self, name: &str) {
        if self.emitted_frozen {
            return;
        }
        let mut tmp = String::new();
        let lower = lower_tmp(name, &mut tmp);
        if !self.emitted.contains(lower) {
            self.emitted.insert(lower.to_string());
        }
    }

    /// Mirrors [`Normalizer::decl`] against the already-streamed body:
    /// a scalar entry declaring a loop variable follows the rename,
    /// unless the name still occurs free in the normalized body.
    fn decl(&mut self, d: &Decl, out: &mut Vec<u8>) {
        out.push(d.ty as u8);
        out.extend_from_slice(&(d.vars.len() as u32).to_le_bytes());
        for v in &d.vars {
            let mut tmp = String::new();
            let lower = lower_tmp(&v.name, &mut tmp);
            let canon = if v.dims.is_empty() && !self.emitted.contains(lower) {
                self.first_canon.get(lower)
            } else {
                None
            };
            match canon {
                Some(c) => encode_str(out, c),
                None => encode_lower_str(out, &v.name),
            }
            out.extend_from_slice(&(v.dims.len() as u32).to_le_bytes());
            for e in &v.dims {
                self.expr(e, out);
            }
        }
    }

    fn stmts(&mut self, body: &[Stmt], out: &mut Vec<u8>) {
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        for s in body {
            self.stmt(s, out);
        }
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<u8>) {
        match s {
            Stmt::Assign { target, value, .. } => {
                out.push(0);
                self.expr(target, out);
                self.expr(value, out);
            }
            Stmt::Do {
                var,
                lb,
                ub,
                step,
                body,
                ..
            } => {
                out.push(1);
                // Expressions contain no loops, so numbering the canon
                // before the bounds matches the Normalizer's
                // bounds-first order.
                let canon = format!("\u{1}l{}", self.next_loop);
                self.next_loop += 1;
                encode_str(out, &canon);
                self.note_emitted(&canon);
                // Bounds are evaluated outside the loop's scope.
                self.expr(lb, out);
                self.expr(ub, out);
                match step {
                    None => out.push(0),
                    Some(e) => {
                        out.push(1);
                        self.expr(e, out);
                    }
                }
                let lower = var.to_ascii_lowercase();
                self.first_canon
                    .entry(lower.clone())
                    .or_insert_with(|| canon.clone());
                self.scopes.push((lower, canon));
                self.stmts(body, out);
                self.scopes.pop();
            }
            Stmt::DoWhile { cond, body, .. } => {
                out.push(2);
                self.expr(cond, out);
                self.stmts(body, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                out.push(3);
                self.expr(cond, out);
                self.stmts(then_body, out);
                self.stmts(else_body, out);
            }
            Stmt::Call { name, args, .. } => {
                out.push(4);
                encode_lower_str(out, name);
                self.note_emitted_lower(name);
                out.extend_from_slice(&(args.len() as u32).to_le_bytes());
                for a in args {
                    self.expr(a, out);
                }
            }
            Stmt::Return { .. } => out.push(5),
        }
    }

    /// Mirrors [`Normalizer::scalar_name`]: the innermost enclosing
    /// loop variable of that name, else the lower-cased name itself.
    fn var_name(&mut self, name: &str, out: &mut Vec<u8>) {
        match self
            .scopes
            .iter()
            .rposition(|(src, _)| name.eq_ignore_ascii_case(src))
        {
            Some(i) => {
                encode_str(out, &self.scopes[i].1);
                if !self.emitted_frozen && !self.emitted.contains(&self.scopes[i].1) {
                    let canon = self.scopes[i].1.clone();
                    self.emitted.insert(canon);
                }
            }
            None => {
                encode_lower_str(out, name);
                self.note_emitted_lower(name);
            }
        }
    }

    /// Encodes a normalized intrinsic call, ordering two-argument
    /// `max`/`min` operands like [`sort_commutative_args`].
    fn intrinsic(&mut self, func: Intrinsic, args: &[Expr], out: &mut Vec<u8>) {
        out.push(7);
        out.push(func as u8);
        out.extend_from_slice(&(args.len() as u32).to_le_bytes());
        if matches!(func, Intrinsic::Max | Intrinsic::Min) && args.len() == 2 {
            self.ordered_pair(&args[0], &args[1], out);
        } else {
            for a in args {
                self.expr(a, out);
            }
        }
    }

    /// Streams two commutative operands in canonical-encoding order:
    /// each is encoded into a pooled scratch buffer, the buffers are
    /// compared in place, and the smaller is appended first — the same
    /// order [`encoded`]-comparison gives the reference path.
    fn ordered_pair(&mut self, x: &Expr, y: &Expr, out: &mut Vec<u8>) {
        let mut a = self.pool.pop().unwrap_or_default();
        let mut b = self.pool.pop().unwrap_or_default();
        self.expr(x, &mut a);
        self.expr(y, &mut b);
        if b < a {
            out.extend_from_slice(&b);
            out.extend_from_slice(&a);
        } else {
            out.extend_from_slice(&a);
            out.extend_from_slice(&b);
        }
        a.clear();
        b.clear();
        self.pool.push(a);
        self.pool.push(b);
    }

    fn expr(&mut self, e: &Expr, out: &mut Vec<u8>) {
        match e {
            Expr::IntLit(n) => {
                out.push(0);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Expr::RealLit(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Expr::LogicalLit(b) => {
                out.push(2);
                out.push(*b as u8);
            }
            Expr::Var(name) => {
                out.push(3);
                self.var_name(name, out);
            }
            Expr::ArrayRef { name, indices } => {
                let mut tmp = String::new();
                let lower = lower_tmp(name, &mut tmp);
                // The parser resolves `name(args)` through the
                // intrinsic table before considering an array
                // reference.
                match Intrinsic::from_name(lower) {
                    Some(func) => self.intrinsic(func, indices, out),
                    None => {
                        out.push(4);
                        encode_lower_str(out, name);
                        self.note_emitted_lower(name);
                        out.extend_from_slice(&(indices.len() as u32).to_le_bytes());
                        for i in indices {
                            self.expr(i, out);
                        }
                    }
                }
            }
            Expr::Unary { op, operand } => {
                // The negated-literal fold, including the cascade
                // through nested negations.
                if *op == UnOp::Neg {
                    match norm_literal(operand) {
                        Some(NormLit::Int(k)) if k != i64::MIN => {
                            out.push(0);
                            out.extend_from_slice(&(-k).to_le_bytes());
                            return;
                        }
                        Some(NormLit::Real(x)) => {
                            out.push(1);
                            out.extend_from_slice(&(-x).to_bits().to_le_bytes());
                            return;
                        }
                        _ => {}
                    }
                }
                out.push(5);
                out.push(*op as u8);
                self.expr(operand, out);
            }
            Expr::Binary { op, lhs, rhs } => {
                out.push(6);
                out.push(*op as u8);
                if commutes(*op) {
                    self.ordered_pair(lhs, rhs, out);
                } else {
                    self.expr(lhs, out);
                    self.expr(rhs, out);
                }
            }
            Expr::Intrinsic { func, args } => self.intrinsic(*func, args, out),
        }
    }
}

/// Does `name` still occur anywhere in the (already normalized) body —
/// as a scalar, array, call target, or loop variable?
fn name_in_use(body: &[Stmt], name: &str) -> bool {
    fn in_expr(e: &Expr, name: &str) -> bool {
        match e {
            Expr::IntLit(_) | Expr::RealLit(_) | Expr::LogicalLit(_) => false,
            Expr::Var(n) => n == name,
            Expr::ArrayRef { name: n, indices } => {
                n == name || indices.iter().any(|i| in_expr(i, name))
            }
            Expr::Unary { operand, .. } => in_expr(operand, name),
            Expr::Binary { lhs, rhs, .. } => in_expr(lhs, name) || in_expr(rhs, name),
            Expr::Intrinsic { args, .. } => args.iter().any(|a| in_expr(a, name)),
        }
    }
    body.iter().any(|s| match s {
        Stmt::Assign { target, value, .. } => in_expr(target, name) || in_expr(value, name),
        Stmt::Do {
            var,
            lb,
            ub,
            step,
            body,
            ..
        } => {
            var == name
                || in_expr(lb, name)
                || in_expr(ub, name)
                || step.as_ref().is_some_and(|e| in_expr(e, name))
                || name_in_use(body, name)
        }
        Stmt::DoWhile { cond, body, .. } => in_expr(cond, name) || name_in_use(body, name),
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => in_expr(cond, name) || name_in_use(then_body, name) || name_in_use(else_body, name),
        Stmt::Call { name: n, args, .. } => n == name || args.iter().any(|a| in_expr(a, name)),
        Stmt::Return { .. } => false,
    })
}

/// Checks that `sub`'s re-emitted source would parse back — without
/// emitting it. Accepts exactly what the textual round trip accepts:
///
/// * every name lexes as one identifier (`[A-Za-z_][A-Za-z0-9_]*`);
/// * assignment targets are variables or array references whose head
///   name does not re-parse as a statement keyword, and an array-ref
///   target is not intrinsic-named (it would re-parse as an intrinsic
///   call, which cannot be assigned);
/// * no `do` variable is named `while` (that header re-parses as a
///   `do while`);
/// * numeric literals re-lex: reals are finite (no `inf`/`NaN` token)
///   and `i64::MIN` does not appear (its magnitude overflows re-lexing).
///
/// # Errors
///
/// A [`Phase::Parse`] error naming the first violation.
pub fn validate_emittable(sub: &Subroutine) -> Result<(), FrontendError> {
    check_name(&sub.name, "subroutine name", sub.span)?;
    for p in &sub.params {
        check_name(p, "parameter", sub.span)?;
    }
    for d in &sub.decls {
        for v in &d.vars {
            check_name(&v.name, "declared variable", d.span)?;
            for e in &v.dims {
                check_expr(e, d.span)?;
            }
        }
    }
    check_stmts(&sub.body)
}

fn check_name(name: &str, what: &str, span: Span) -> Result<(), FrontendError> {
    let mut chars = name.chars();
    let head_ok = matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_');
    if head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Ok(())
    } else {
        Err(FrontendError::new(
            Phase::Parse,
            format!("{what} `{name}` does not lex as an identifier"),
            span,
        ))
    }
}

fn check_expr(e: &Expr, span: Span) -> Result<(), FrontendError> {
    match e {
        Expr::IntLit(n) => {
            if *n == i64::MIN {
                return Err(FrontendError::new(
                    Phase::Parse,
                    "integer literal magnitude overflows re-lexing".to_string(),
                    span,
                ));
            }
        }
        Expr::RealLit(x) => {
            if !x.is_finite() {
                return Err(FrontendError::new(
                    Phase::Parse,
                    "non-finite real literal has no source form".to_string(),
                    span,
                ));
            }
        }
        Expr::LogicalLit(_) => {}
        Expr::Var(name) => check_name(name, "variable", span)?,
        Expr::ArrayRef { name, indices } => {
            check_name(name, "array", span)?;
            for i in indices {
                check_expr(i, span)?;
            }
        }
        Expr::Unary { operand, .. } => check_expr(operand, span)?,
        Expr::Binary { lhs, rhs, .. } => {
            check_expr(lhs, span)?;
            check_expr(rhs, span)?;
        }
        Expr::Intrinsic { args, .. } => {
            for a in args {
                check_expr(a, span)?;
            }
        }
    }
    Ok(())
}

fn check_stmts(body: &[Stmt]) -> Result<(), FrontendError> {
    body.iter().try_for_each(check_stmt)
}

fn check_stmt(s: &Stmt) -> Result<(), FrontendError> {
    match s {
        Stmt::Assign {
            target,
            value,
            span,
        } => {
            let head = match target {
                Expr::Var(name) => name,
                Expr::ArrayRef { name, .. } => {
                    if Intrinsic::from_name(&name.to_ascii_lowercase()).is_some() {
                        return Err(FrontendError::new(
                            Phase::Parse,
                            format!("assignment target `{name}(...)` re-parses as an intrinsic"),
                            *span,
                        ));
                    }
                    name
                }
                _ => {
                    return Err(FrontendError::new(
                        Phase::Parse,
                        "assignment target is not a variable or array reference".to_string(),
                        *span,
                    ));
                }
            };
            if STMT_KEYWORDS.contains(&head.to_ascii_lowercase().as_str()) {
                return Err(FrontendError::new(
                    Phase::Parse,
                    format!("assignment target `{head}` re-parses as a statement keyword"),
                    *span,
                ));
            }
            check_expr(target, *span)?;
            check_expr(value, *span)
        }
        Stmt::Do {
            var,
            lb,
            ub,
            step,
            body,
            span,
        } => {
            check_name(var, "loop variable", *span)?;
            if var.eq_ignore_ascii_case("while") {
                return Err(FrontendError::new(
                    Phase::Parse,
                    "loop variable `while` re-parses as a do-while header".to_string(),
                    *span,
                ));
            }
            check_expr(lb, *span)?;
            check_expr(ub, *span)?;
            if let Some(e) = step {
                check_expr(e, *span)?;
            }
            check_stmts(body)
        }
        Stmt::DoWhile { cond, body, span } => {
            check_expr(cond, *span)?;
            check_stmts(body)
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            span,
        } => {
            check_expr(cond, *span)?;
            check_stmts(then_body)?;
            check_stmts(else_body)
        }
        Stmt::Call { name, args, span } => {
            check_name(name, "call target", *span)?;
            args.iter().try_for_each(|a| check_expr(a, *span))
        }
        Stmt::Return { .. } => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::subroutine_hash;
    use crate::parser::parse;

    fn sub(src: &str) -> Subroutine {
        parse(src).unwrap().units.remove(0)
    }

    const NEST: &str = "subroutine s(a, n)
        real a(n,n)
        integer i, j, n
        do i = 1, n
          do j = 1, n
            a(i,j) = a(i,j) * 2.0 + 1.0
          end do
        end do
      end";

    #[test]
    fn roundtrip_preserves_structural_hash() {
        let a = sub(NEST);
        let b = sub(&a.to_string());
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn normalize_is_idempotent() {
        let a = normalize(&sub(NEST));
        assert_eq!(subroutine_hash(&a), subroutine_hash(&normalize(&a)));
    }

    #[test]
    fn negated_literal_folds_to_parser_image() {
        // `(n + -3)` is what the unroller builds directly; its re-parse
        // is `(n + (-(3)))`. Both must share a structural hash.
        let direct = sub(
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = 0.0\nend do\nend",
        );
        let mut built = direct.clone();
        if let Stmt::Do { ub, .. } = &mut built.body[0] {
            *ub = Expr::binary(BinOp::Add, Expr::Var("n".into()), Expr::IntLit(-3));
        }
        let reparsed = sub(&built.to_string());
        assert_ne!(subroutine_hash(&built), subroutine_hash(&reparsed));
        assert_eq!(structural_hash(&built), structural_hash(&reparsed));
    }

    #[test]
    fn commutative_operands_share_a_hash() {
        let a = sub("subroutine s(x, a, b)\nreal x, a, b\nx = a + b\nend");
        let b = sub("subroutine s(x, a, b)\nreal x, a, b\nx = b + a\nend");
        assert_ne!(subroutine_hash(&a), subroutine_hash(&b));
        assert_eq!(structural_hash(&a), structural_hash(&b));
        // Non-commutative operators keep operand order.
        let c = sub("subroutine s(x, a, b)\nreal x, a, b\nx = a - b\nend");
        let d = sub("subroutine s(x, a, b)\nreal x, a, b\nx = b - a\nend");
        assert_ne!(structural_hash(&c), structural_hash(&d));
    }

    #[test]
    fn loop_variable_names_are_alpha_canonical() {
        let a = sub(
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n\na(i) = 0.0\nend do\nend",
        );
        let b = sub(
            "subroutine s(a, n)\nreal a(n)\ninteger k, n\ndo k = 1, n\na(k) = 0.0\nend do\nend",
        );
        assert_eq!(structural_hash(&a), structural_hash(&b));
        // Parameters are free names, not alpha-convertible.
        let c = sub(
            "subroutine s(a, m)\nreal a(m)\ninteger i, m\ndo i = 1, m\na(i) = 0.0\nend do\nend",
        );
        assert_ne!(structural_hash(&a), structural_hash(&c));
    }

    #[test]
    fn shadowed_loop_variables_resolve_innermost() {
        let a = sub("subroutine s(a, n)\nreal a(n,n)\ninteger i, n\ndo i = 1, n\ndo i = 1, n\na(i,i) = 0.0\nend do\nend do\nend");
        let b = sub("subroutine s(a, n)\nreal a(n,n)\ninteger j, n\ndo j = 1, n\ndo j = 1, n\na(j,j) = 0.0\nend do\nend do\nend");
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn intrinsic_named_array_ref_folds_to_intrinsic() {
        let mut built = sub("subroutine s(x, y)\nreal x, y\nx = y\nend");
        if let Stmt::Assign { value, .. } = &mut built.body[0] {
            *value = Expr::ArrayRef {
                name: "sqrt".into(),
                indices: vec![Expr::Var("y".into())],
            };
        }
        let reparsed = sub(&built.to_string());
        assert!(matches!(
            &reparsed.body[0],
            Stmt::Assign {
                value: Expr::Intrinsic { .. },
                ..
            }
        ));
        assert_eq!(structural_hash(&built), structural_hash(&reparsed));
    }

    #[test]
    fn streaming_hash_matches_normalize_then_hash() {
        // The streaming hasher must emit byte-for-byte what
        // `encode_subroutine(&normalize(sub))` folds — cover every
        // normalization rule it mirrors.
        let sources = [
            NEST,
            // Commutative chains and 2-argument max/min.
            "subroutine s(x, a, b, c)\nreal x, a, b, c\nx = c + b + a\nx = max(b, a) * min(c, b)\nend",
            // Shadowed loop variables and a renameable declaration.
            "subroutine s(a, n)\nreal a(n,n)\ninteger i, n\ndo i = 1, n\ndo i = 1, n\na(i,i) = 0.0\nend do\nend do\nend",
            // Loop variable that survives free after its loop: the
            // declaration must NOT follow the rename.
            "subroutine s(a, n, x)\nreal a(n), x\ninteger i, n\ndo i = 1, n\na(i) = 0.0\nend do\nx = i\nend",
            // Steps, calls, conditionals, do-while.
            "subroutine s(a, n)\nreal a(n)\ninteger i, n\ndo i = 1, n, 2\nif (a(i) .gt. 0.0) then\na(i) = sqrt(a(i))\nelse\ncall fix(a, i)\nend if\nend do\ndo while (a(1) .lt. 0.0)\na(1) = a(1) + 1.0\nend do\nreturn\nend",
        ];
        for src in sources {
            let s = sub(src);
            assert_eq!(
                structural_hash(&s),
                subroutine_hash(&normalize(&s)),
                "streaming hash diverged from the reference path on:\n{src}"
            );
        }
        // Built (never-parsed) shapes: negated and double-negated
        // literals, intrinsic-named array references, mixed case.
        let mut built = sub(NEST);
        built.name = "S".into();
        if let Stmt::Do { ub, body, .. } = &mut built.body[0] {
            *ub = Expr::binary(
                BinOp::Add,
                Expr::Var("N".into()),
                Expr::unary(UnOp::Neg, Expr::unary(UnOp::Neg, Expr::IntLit(-3))),
            );
            body.push(Stmt::Assign {
                target: Expr::Var("x".into()),
                value: Expr::ArrayRef {
                    name: "SQRT".into(),
                    indices: vec![Expr::unary(UnOp::Neg, Expr::RealLit(2.5))],
                },
                span: Span::default(),
            });
        }
        assert_eq!(structural_hash(&built), subroutine_hash(&normalize(&built)));
        // The unfoldable edge: -(i64::MIN) has no representation.
        let mut edge = sub(NEST);
        edge.body.push(Stmt::Assign {
            target: Expr::Var("x".into()),
            value: Expr::unary(UnOp::Neg, Expr::IntLit(i64::MIN)),
            span: Span::default(),
        });
        assert_eq!(structural_hash(&edge), subroutine_hash(&normalize(&edge)));
    }

    #[test]
    fn validate_accepts_parsed_programs() {
        assert!(validate_emittable(&sub(NEST)).is_ok());
    }

    #[test]
    fn validate_rejects_unlexable_target() {
        let mut bad = sub(NEST);
        bad.body.push(Stmt::Assign {
            target: Expr::Var("end do".into()),
            value: Expr::IntLit(0),
            span: Span::default(),
        });
        assert!(validate_emittable(&bad).is_err());
    }

    #[test]
    fn validate_rejects_keyword_target_and_nonfinite_real() {
        let mut bad = sub(NEST);
        bad.body.push(Stmt::Assign {
            target: Expr::Var("return".into()),
            value: Expr::IntLit(0),
            span: Span::default(),
        });
        assert!(validate_emittable(&bad).is_err());

        let mut bad = sub(NEST);
        bad.body.push(Stmt::Assign {
            target: Expr::Var("x".into()),
            value: Expr::RealLit(f64::INFINITY),
            span: Span::default(),
        });
        assert!(validate_emittable(&bad).is_err());
    }
}
