//! Mini-Fortran/HPF front-end for the Presage performance predictor.
//!
//! The paper's framework predicts the performance of Fortran-family
//! programs inside the PTRAN II HPF compiler. This crate supplies the
//! program representation that the predictor consumes: a lexer, a
//! recursive-descent parser, Fortran implicit typing and type checking, and
//! the structural analyses (loop nests, invariants, affine subscripts) the
//! cost model relies on.
//!
//! # The language
//!
//! Free-form mini-Fortran: `subroutine`/`end`, `integer`/`real`/`logical`
//! declarations with array dimensions, `do`/`end do` loops with optional
//! step, block and one-line `if` with `.lt. .le. ==`-style operators,
//! `call`, `return`, arithmetic with `**`, and intrinsics (`sqrt`, `abs`,
//! `max`, `min`, `mod`, …). `!` comments and `&` continuations.
//!
//! # Example
//!
//! ```
//! use presage_frontend::{parse, sema, analysis};
//!
//! let prog = parse(
//!     "subroutine jacobi(a, b, n)
//!        real a(n,n), b(n,n)
//!        integer i, j, n
//!        do i = 2, n-1
//!          do j = 2, n-1
//!            a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
//!          end do
//!        end do
//!      end",
//! ).unwrap();
//! let sub = &prog.units[0];
//! let symbols = sema::analyze(sub).unwrap();
//! assert!(symbols.is_array("a"));
//! let (headers, inner) = analysis::perfect_nest(&sub.body[0]);
//! assert_eq!(headers.len(), 2);
//! assert_eq!(inner.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod ast;
pub mod diag;
pub mod fold;
pub mod normalize;
pub mod sema;
pub mod span;

mod lexer;
mod parser;
mod token;

pub use ast::{BaseType, BinOp, Decl, DeclVar, Expr, Intrinsic, Program, Stmt, Subroutine, UnOp};
pub use diag::{FrontendError, Phase};
pub use lexer::lex;
pub use parser::parse;
pub use span::Span;
