//! Robustness: the front end must reject arbitrary garbage with an error,
//! never a panic, and must be total over its own output (print → parse).

use presage_frontend::parse;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_ascii(input in "[ -~\n]{0,200}") {
        // Success or error are both fine; a panic is not.
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_on_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("subroutine".to_string()),
                Just("do".to_string()),
                Just("while".to_string()),
                Just("end".to_string()),
                Just("if".to_string()),
                Just("then".to_string()),
                Just("else".to_string()),
                Just("call".to_string()),
                Just("return".to_string()),
                Just("real".to_string()),
                Just("integer".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just("=".to_string()),
                Just("+".to_string()),
                Just("**".to_string()),
                Just(".lt.".to_string()),
                Just("\n".to_string()),
                Just("x".to_string()),
                Just("1".to_string()),
                Just("2.5".to_string()),
            ],
            0..60,
        )
    ) {
        let input = words.join(" ");
        let _ = parse(&input);
    }

    #[test]
    fn valid_programs_roundtrip_through_printer(
        n_loops in 1usize..4,
        use_if in proptest::bool::ANY,
        use_while in proptest::bool::ANY,
    ) {
        let mut body = String::new();
        for k in 0..n_loops {
            body.push_str(&format!("do i = 1, n, {}\n", k + 1));
            if use_if {
                body.push_str("if (i .le. k) then\na(i) = 0.0\nelse\na(i) = 1.0\nend if\n");
            } else {
                body.push_str(&format!("a(i) = a(i) * {k}.0 + 1.0\n"));
            }
            body.push_str("end do\n");
        }
        if use_while {
            body.push_str("do while (x .gt. 0.5)\nx = x * 0.5\nend do\n");
        }
        let src = format!("subroutine s(a, n, k)\nreal a(n), x\ninteger i, n, k\n{body}end");
        let p1 = parse(&src).expect("generated program is valid");
        let emitted = p1.units[0].to_string();
        let p2 = parse(&emitted).expect("printer output re-parses");
        prop_assert_eq!(emitted, p2.units[0].to_string(), "printer is a fixpoint");
    }
}
