//! Robustness: the front end must reject arbitrary garbage with an error,
//! never a panic, and must be total over its own output (print → parse).
//!
//! Formerly proptest-based; rewritten as deterministic randomized tests on
//! an in-tree splitmix64 generator so the suite builds with no external
//! dependencies (the build environment is offline).

use presage_frontend::parse;

/// Splitmix64: tiny, high-quality, dependency-free PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

#[test]
fn parser_never_panics_on_ascii() {
    let mut rng = Rng(0xA5A5_0001);
    for _ in 0..512 {
        let len = rng.below(201);
        let input: String = (0..len)
            .map(|_| {
                // Printable ASCII plus newline, matching the old strategy.
                let k = rng.below(96);
                if k == 95 {
                    '\n'
                } else {
                    (b' ' + k as u8) as char
                }
            })
            .collect();
        // Success or error are both fine; a panic is not.
        let _ = parse(&input);
    }
}

#[test]
fn parser_never_panics_on_token_soup() {
    const WORDS: &[&str] = &[
        "subroutine",
        "do",
        "while",
        "end",
        "if",
        "then",
        "else",
        "call",
        "return",
        "real",
        "integer",
        "(",
        ")",
        ",",
        "=",
        "+",
        "**",
        ".lt.",
        "\n",
        "x",
        "1",
        "2.5",
    ];
    let mut rng = Rng(0xA5A5_0002);
    for _ in 0..512 {
        let n = rng.below(60);
        let input: Vec<&str> = (0..n).map(|_| WORDS[rng.below(WORDS.len())]).collect();
        let _ = parse(&input.join(" "));
    }
}

#[test]
fn valid_programs_roundtrip_through_printer() {
    let mut rng = Rng(0xA5A5_0003);
    for _ in 0..64 {
        let n_loops = 1 + rng.below(3);
        let use_if = rng.flip();
        let use_while = rng.flip();
        let mut body = String::new();
        for k in 0..n_loops {
            body.push_str(&format!("do i = 1, n, {}\n", k + 1));
            if use_if {
                body.push_str("if (i .le. k) then\na(i) = 0.0\nelse\na(i) = 1.0\nend if\n");
            } else {
                body.push_str(&format!("a(i) = a(i) * {k}.0 + 1.0\n"));
            }
            body.push_str("end do\n");
        }
        if use_while {
            body.push_str("do while (x .gt. 0.5)\nx = x * 0.5\nend do\n");
        }
        let src = format!("subroutine s(a, n, k)\nreal a(n), x\ninteger i, n, k\n{body}end");
        let p1 = parse(&src).expect("generated program is valid");
        let emitted = p1.units[0].to_string();
        let p2 = parse(&emitted).expect("printer output re-parses");
        assert_eq!(emitted, p2.units[0].to_string(), "printer is a fixpoint");
    }
}
