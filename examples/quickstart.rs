//! Quickstart: predict the cost of a kernel at compile time.
//!
//! Run with `cargo run --example quickstart`.

use presage::core::predictor::Predictor;
use presage::core::render::render_cost_block;
use presage::core::{place_block, PlaceOptions};
use presage::machine::machines;
use presage::symbolic::Symbol;
use std::collections::HashMap;

const DAXPY: &str = "subroutine daxpy(y, x, a, n)
   real y(n), x(n), a
   integer i, n
   do i = 1, n
     y(i) = y(i) + a * x(i)
   end do
 end";

fn main() {
    let machine = machines::power_like();
    let predictor = Predictor::new(machine.clone());

    // One call gives a symbolic performance expression over the unknowns.
    let prediction = &predictor.predict_source(DAXPY).expect("valid program")[0];
    println!("kernel: daxpy");
    println!("predicted cost: C(n) = {} cycles\n", prediction.total);

    // Unknowns stay symbolic until *we* decide to bind them.
    let n = Symbol::new("n");
    for size in [10u32, 1_000, 1_000_000] {
        let mut bindings = HashMap::new();
        bindings.insert(n.clone(), size as f64);
        let cycles = prediction.total.eval_with_defaults(&bindings);
        println!("  n = {size:>9}: {cycles:>12.0} cycles");
    }

    // Inspect the innermost basic block's cost block (paper Figure 8).
    let inner = prediction.ir.innermost_block().expect("loop body");
    let cb = place_block(&machine, inner, PlaceOptions::default());
    println!("\ninnermost basic block on {}:", machine.name());
    print!("{}", render_cost_block(&cb));
    println!(
        "\ncritical unit: {:?}, occupancy {:.0}%, suggested unroll ≈ {}",
        cb.critical_unit().expect("nonempty block"),
        cb.critical_ratio() * 100.0,
        cb.suggested_unroll()
    );
}
