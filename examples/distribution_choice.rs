//! Choosing a data distribution straight from program text.
//!
//! The paper cites Balasundaram et al.'s distribution-choice problem and
//! plugs a parameterized message-passing model into the same symbolic
//! expressions as the instruction model: block vs. cyclic is settled by
//! the §3.1 comparison machinery — without guessing `n`. The analyzer
//! reads the halo radius and triangularity out of the loop nest itself.
//!
//! Run with `cargo run --example distribution_choice`.

use presage::core::comm::CommParams;
use presage::core::predictor::Predictor;
use presage::machine::machines;
use presage::opt::partition::choose_distribution;
use presage::symbolic::{CompareOutcome, Symbol};

const JACOBI: &str = "subroutine jacobi(a, b, n)
   real a(n,n), b(n,n)
   integer i, j, n
   do j = 2, n-1
     do i = 2, n-1
       a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
     end do
   end do
 end";

const TRIANGULAR: &str = "subroutine tri(a, n)
   real a(n,n)
   integer i, j, n
   do i = 1, n
     do j = i, n
       a(i,j) = a(i,j) * 0.5
     end do
   end do
 end";

fn study(label: &str, src: &str) {
    let sub = presage::frontend::parse(src)
        .expect("valid")
        .units
        .remove(0);
    let predictor = Predictor::new(machines::power_like());
    let params = CommParams::default();
    let n = Symbol::new("n");
    let (block, cyclic, cmp) =
        choose_distribution(&sub, &predictor, &params, &n, (256.0, 8192.0)).expect("analyzes");

    println!("=== {label} ===");
    println!(
        "  nest shape: outer `{}`, halo radius {}, triangular: {}",
        block.shape.outer_var, block.shape.halo_radius, block.shape.triangular
    );
    println!("  C_block (n) = {}", block.total);
    println!("  C_cyclic(n) = {}", cyclic.total);
    let verdict = match cmp.outcome {
        CompareOutcome::FirstCheaper => "BLOCK wins for every n in range",
        CompareOutcome::SecondCheaper => "CYCLIC wins for every n in range",
        CompareOutcome::AlwaysEqual => "tie",
        CompareOutcome::DependsOnUnknowns => "depends on n (run-time test material)",
        CompareOutcome::Undetermined => "undetermined",
    };
    println!("  → {verdict}\n");
}

fn main() {
    println!(
        "P = {} processors, α = {}, β = {} (cycles)\n",
        CommParams::default().procs,
        CommParams::default().alpha,
        CommParams::default().beta
    );
    study("Jacobi sweep (halo exchange dominates)", JACOBI);
    study("triangular update (load balance dominates)", TRIANGULAR);
    println!("no value of n was ever guessed: both verdicts held symbolically");
    println!("over the whole range — the paper's central claim in action.");
}
