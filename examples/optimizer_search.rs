//! Automatic transformation search (paper §3.2).
//!
//! "Based on the symbolic performance comparison, the compiler can utilize
//! graph search algorithms, such as the A* algorithm, to choose program
//! transformation sequence systematically."
//!
//! Run with `cargo run --example optimizer_search`.

use presage::core::predictor::Predictor;
use presage::machine::machines;
use presage::opt::search::{astar_search, SearchOptions};

const KERNEL: &str = "subroutine sweep(a, b, n)
   real a(n,n), b(n,n)
   integer i, j, n
   do i = 1, n
     do j = 1, n
       a(i,j) = b(i,j) * 2.0 + 1.0
     end do
   end do
   do i = 1, n
     do j = 1, n
       b(i,j) = a(i,j) * 0.5
     end do
   end do
 end";

fn main() {
    let sub = presage::frontend::parse(KERNEL)
        .expect("valid")
        .units
        .remove(0);
    let predictor = Predictor::new(machines::power_like());

    let mut opts = SearchOptions {
        max_expansions: 32,
        max_depth: 3,
        ..SearchOptions::default()
    };
    opts.eval_point.insert("n".into(), 1000.0);

    let result = astar_search(&sub, &predictor, &opts);

    println!("original cost : {:>14.0} cycles", result.original_cost);
    println!("best found    : {:>14.0} cycles", result.best_cost);
    println!("speedup       : {:>14.2}×", result.speedup());
    println!(
        "states expanded: {}, variants evaluated: {}",
        result.expansions, result.evaluated
    );

    if result.sequence.is_empty() {
        println!("\nno transformation sequence improved the prediction.");
    } else {
        println!("\nwinning sequence:");
        for (i, step) in result.sequence.iter().enumerate() {
            println!(
                "  {}. {} at loop path {:?} -> {:.0} cycles",
                i + 1,
                step.transform,
                step.path,
                step.cost
            );
        }
        println!("\ntransformed program:\n{}", result.best);
        println!("symbolic cost: {}", result.best_expr);
    }
}
