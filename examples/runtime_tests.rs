//! Run-time test generation from symbolic crossovers (paper §3.4).
//!
//! Two variants of a kernel trade places depending on an unknown `n`:
//! instead of guessing, the framework finds the exact crossover, ranks the
//! unknowns by sensitivity, and emits a multi-version dispatcher.
//!
//! Run with `cargo run --example runtime_tests`.

use presage::core::predictor::{Predictor, PredictorOptions};
use presage::machine::machines;
use presage::opt::rtt::{emit_multiversion, plan_from_comparison, test_candidates};
use presage::symbolic::sensitivity::{analyze, SensitivityOptions};

/// Variant A: compute with a per-call setup loop (cheap per element).
const VARIANT_A: &str = "subroutine smooth_fast(a, w, n)
   real a(n), w(64)
   integer i, n
   do i = 1, 64
     w(i) = 0.015625
   end do
   do i = 1, n
     a(i) = a(i) * 0.5
   end do
 end";

/// Variant B: no setup, heavier per-element work.
const VARIANT_B: &str = "subroutine smooth_slow(a, w, n)
   real a(n), w(64)
   integer i, n
   do i = 1, n
     a(i) = a(i) * 0.5 + a(i) / 8.0 - a(i) / 16.0
   end do
 end";

fn main() {
    let mut opts = PredictorOptions::default();
    opts.aggregate.var_ranges.insert("n".into(), (1.0, 400.0));
    let predictor = Predictor::with_options(machines::power_like(), opts);

    let a = &predictor.predict_source(VARIANT_A).expect("A")[0];
    let b = &predictor.predict_source(VARIANT_B).expect("B")[0];
    println!("C(fast) = {}", a.total);
    println!("C(slow) = {}", b.total);

    let cmp = a.total.compare(&b.total);
    println!("\nsymbolic comparison: {}", cmp.outcome);
    for x in &cmp.crossovers {
        println!("  crossover at n = {x:.1}");
    }

    if let Some(plan) = plan_from_comparison(&cmp) {
        println!("\n{plan}");
        let sub_a = presage::frontend::parse(VARIANT_A).unwrap().units.remove(0);
        let sub_b = presage::frontend::parse(VARIANT_B).unwrap().units.remove(0);
        println!(
            "generated dispatcher:\n{}",
            emit_multiversion(&plan, &sub_a, &sub_b)
        );
    } else {
        println!("\none variant dominates: no run-time test needed");
    }

    // Sensitivity analysis picks which unknowns deserve tests at all.
    println!("sensitivity ranking for the fast variant:");
    for s in analyze(&a.total, SensitivityOptions::default()) {
        println!("  {s}");
    }
    println!("\ntop test candidate: {:?}", test_candidates(&a.total, 1));
}
