//! Portability: one kernel, three machine descriptions (paper §2.2.1).
//!
//! "Adding a new architecture to the cost model is a matter of defining
//! the atomic operation mapping and the atomic operation cost table." The
//! example predicts the same kernels on the POWER-like superscalar, a
//! scalar RISC, and a 4-wide machine — and round-trips a description
//! through JSON to show that targets are data, not code.
//!
//! Run with `cargo run --example cross_machine`.

use presage::core::predictor::Predictor;
use presage::machine::{machines, MachineDesc};
use presage::symbolic::Symbol;
use std::collections::HashMap;

const KERNELS: &[(&str, &str)] = &[
    (
        "daxpy",
        "subroutine daxpy(y, x, a, n)
           real y(n), x(n), a
           integer i, n
           do i = 1, n
             y(i) = y(i) + a * x(i)
           end do
         end",
    ),
    (
        "jacobi",
        "subroutine jacobi(a, b, n)
           real a(n,n), b(n,n)
           integer i, j, n
           do j = 2, n-1
             do i = 2, n-1
               a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
             end do
           end do
         end",
    ),
    (
        "dot",
        "subroutine dot(s, x, y, n)
           real s(1), x(n), y(n)
           integer i, n
           do i = 1, n
             s(1) = s(1) + x(i) * y(i)
           end do
         end",
    ),
];

fn predict_cycles(machine: &MachineDesc, src: &str, n: f64) -> f64 {
    let predictor = Predictor::new(machine.clone());
    let pred = &predictor.predict_source(src).expect("valid kernel")[0];
    let mut b = HashMap::new();
    b.insert(Symbol::new("n"), n);
    pred.total.eval_with_defaults(&b)
}

fn main() {
    // Retargeting = swapping the description, including via JSON.
    let json = machines::power_like().to_json();
    let reloaded = MachineDesc::from_json(&json).expect("round-trips");
    let targets = [reloaded, machines::risc1(), machines::wide4()];

    let n = 1000.0;
    println!("predicted cycles at n = {n} (same source, three machines):\n");
    print!("{:<10}", "kernel");
    for m in &targets {
        print!("{:>14}", m.name());
    }
    println!();
    for (name, src) in KERNELS {
        print!("{name:<10}");
        for m in &targets {
            print!("{:>14.0}", predict_cycles(m, src, n));
        }
        println!();
    }

    println!("\nspeedup of wide4 over risc1 comes from unit-level parallelism");
    println!("that the Tetris model sees through its functional-unit bins.");
}
