//! Choosing matmul transformations with symbolic comparison (paper §3.1).
//!
//! The compiler wants to know: does unrolling the inner loop pay? Does
//! tiling pay once the memory model is on? Instead of guessing `n`, the
//! framework compares whole performance expressions.
//!
//! Run with `cargo run --example matmul_tuning`.

use presage::core::predictor::{Predictor, PredictorOptions};
use presage::machine::machines;
use presage::opt::transforms::Transform;
use presage::opt::whatif::{compare_transform, cost_of};
use presage::symbolic::CompareOutcome;

const MATMUL: &str = "subroutine matmul(a, b, c, n)
   real a(n,n), b(n,n), c(n,n)
   integer i, j, k, n
   do j = 1, n
     do i = 1, n
       do k = 1, n
         c(i,j) = c(i,j) + a(i,k) * b(k,j)
       end do
     end do
   end do
 end";

fn main() {
    let sub = presage::frontend::parse(MATMUL)
        .expect("valid")
        .units
        .remove(0);

    // Pure compute model first.
    let predictor = Predictor::new(machines::power_like());
    let base = cost_of(&sub, &predictor).expect("predicts");
    println!("matmul on {}:", predictor.machine().name());
    println!("  C(original)     = {base}");

    for (label, path, t) in [
        ("unroll k by 2  ", vec![0usize, 0, 0], Transform::Unroll(2)),
        ("unroll k by 4  ", vec![0, 0, 0], Transform::Unroll(4)),
        ("interchange i,k", vec![0, 0], Transform::Interchange),
    ] {
        match compare_transform(&sub, &path, &t, &predictor) {
            Ok((_, cmp)) => {
                let verdict = match cmp.outcome {
                    CompareOutcome::FirstCheaper => "WINS for all n",
                    CompareOutcome::SecondCheaper => "loses for all n",
                    CompareOutcome::AlwaysEqual => "no change",
                    CompareOutcome::DependsOnUnknowns => "depends on n",
                    CompareOutcome::Undetermined => "undetermined",
                };
                println!("  {label}: {verdict}   (Δ = {})", cmp.difference);
            }
            Err(e) => println!("  {label}: not applicable ({e})"),
        }
    }

    // With the memory model, tiling becomes interesting: the untiled inner
    // nest streams b(k,j) column-by-column while a(i,k) loses reuse once a
    // row no longer fits in cache.
    let mut opts = PredictorOptions {
        include_memory: true,
        ..PredictorOptions::default()
    };
    opts.aggregate
        .var_ranges
        .insert("n".into(), (512.0, 2048.0));
    let mem_predictor = Predictor::with_options(machines::power_like(), opts);
    let base_mem = cost_of(&sub, &mem_predictor).expect("predicts");
    println!("\nwith the §2.3 memory model (n ∈ [512, 2048]):");
    println!("  C(original)     = {base_mem}");
    match compare_transform(&sub, &[0, 0, 0], &Transform::Tile(32), &mem_predictor) {
        Ok((_, cmp)) => {
            println!(
                "  tile k by 32    : {}   (Δ = {})",
                cmp.outcome, cmp.difference
            );
        }
        Err(e) => println!("  tile k by 32: {e}"),
    }
}
