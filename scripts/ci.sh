#!/usr/bin/env sh
# Offline CI for presage: tier-1 build + tests with warnings denied, then
# a perfsuite smoke pass (placement, end-to-end prediction, and the
# symbolic engine micro-benchmark on reduced budgets). No network access
# is required or attempted — the workspace has no external dependencies.
#
# Usage: scripts/ci.sh [--server-only]
#
# `--server-only` runs just the epoch-reclamation / daemon gate: the
# perfsuite server soak (footprint ceilings + oracle bit-identity over
# ≥3 reclaiming epochs, writes BENCH_server.json), the stale-L1 and
# cap-pressure regressions, and the server's malformed-job negatives.
set -eu

cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"

if [ "${1:-}" = "--server-only" ]; then
    echo "== server: epoch soak + footprint ceilings + oracle bit-identity (writes BENCH_server.json)"
    cargo run --release -p presage-bench --bin perfsuite -- --server-only

    echo "== server: stale-L1 + cap-pressure + recycled-slot regressions"
    cargo test -q -p presage-symbolic --test cap_pressure

    echo "== server: malformed-job negatives + wave protocol"
    cargo test -q -p presage-server

    echo "ci: server-only checks passed"
    exit 0
fi

echo "== format: cargo fmt --check"
cargo fmt --check

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== workspace: build + test (all crates, warnings denied)"
cargo build --release --workspace
cargo test -q --workspace

echo "== lint: cargo clippy (all targets, warnings denied)"
cargo clippy --release --all-targets -- -D warnings

echo "== translation cache: differential proof against the uncached oracle"
cargo test -q -p presage-core --test translation_cache

echo "== canonicalization: malformed variants are rejected, not panics"
cargo test -q -p presage-opt --test variant_rejection

echo "== simulator: event-driven engine differential proof vs cycle-driven oracle"
cargo test -q -p presage-sim --test differential

echo "== symbolic: id-keyed algebra differential proof + predict_batch == sequential (1..16 workers)"
cargo test -q --test symbolic_differential
cargo test -q -p presage-core batch::

echo "== contention: identical jobs on all workers stay bit-identical"
cargo test -q --test symbolic_differential contended_identical_jobs_stay_bit_identical

echo "== structural canonicalization: normalize-vs-reparse differential + e-graph dominance"
cargo test -q --test normalize_differential
cargo test -q --test structural_search

echo "== batch scaling: 1..4-worker monotone floor + soak footprint ceilings"
cargo run --release -p presage-bench --bin perfsuite -- --batch-only

echo "== memory model: differential proof vs the line-counting cache + machine-file negatives"
cargo test -q --test memcost_differential
cargo test -q --test machine_files

echo "== memory model: memoized mem_cost floor + memory-vs-compute split (writes BENCH_memory.json)"
cargo run --release -p presage-bench --bin perfsuite -- --memory-only

echo "== variant search: e-graph vs textual A* floor (full budgets, writes BENCH_search.json)"
cargo run --release -p presage-bench --bin perfsuite -- --search-only

echo "== server loop: epoch soak, footprint ceilings, oracle bit-identity (writes BENCH_server.json)"
cargo run --release -p presage-bench --bin perfsuite -- --server-only

echo "== epoch reclamation: differential proof across reclaiming epochs"
cargo test -q --test epoch_differential
cargo test -q -p presage-symbolic --test cap_pressure

echo "== perfsuite --smoke (placement + prediction + translation + symbolic + simulator + search + memory)"
cargo run --release -p presage-bench --bin perfsuite -- --smoke --out BENCH_smoke.json --search-out BENCH_search_smoke.json --memory-out BENCH_memory_smoke.json
rm -f BENCH_smoke.json BENCH_search_smoke.json BENCH_memory_smoke.json

echo "ci: all checks passed"
